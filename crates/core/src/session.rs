//! The per-run execution environment: a simulated RVV machine plus
//! device-memory management, created from a shared [`Engine`].
//!
//! [`Session`] plays the role the C runtime plays in the paper: it owns the
//! simulated machine, stages input vectors into simulated memory, launches
//! compiled kernels with a simple calling convention, and reads results
//! back. Kernels are generated per `(name, SEW, LMUL)` under the
//! session's fixed `(VLEN, spill profile)` — exactly like compiling a C
//! file per target configuration — and cached as pre-decoded
//! [`CompiledPlan`]s in the engine's [`crate::PlanCache`], so repeated
//! launches (from this session or any sibling of the same engine) skip
//! instruction classification entirely (see [`ExecEngine`]).
//!
//! [`ScanEnv`] is the historical name for [`Session`] and remains a type
//! alias: `ScanEnv::new(cfg)` builds a session over a private default
//! engine, which is exactly the old behavior.
//!
//! ## Calling convention
//!
//! * `a0..a7` (`x10..x17`) carry kernel arguments (element count, buffer
//!   addresses, broadcast scalars).
//! * The kernel's scalar result (if any) returns in `a0`.
//! * `sp` enters pointing at the top of the stack region; kernels with
//!   spill frames push/pop below it.
//! * Kernels end with `ecall`.

use crate::engine::Engine;
use crate::error::{ScanError, ScanResult};
use crate::plan_cache::PlanCache;
use crate::snapshot::EnvSnapshot;
use rvv_asm::SpillProfile;
use rvv_isa::Instr;
use rvv_isa::{KernelConfig, Lmul, Sew, XReg};
use rvv_sim::{
    CancelToken, CompiledPlan, FaultAction, FaultHook, Machine, MachineConfig, MemAccess, Program,
    RunReport, SimError, TraceSink, DEFAULT_FUEL,
};
use std::ops::Range;
use std::sync::Arc;

/// Stack reservation at the top of device memory.
pub(crate) const STACK_BYTES: u64 = 1 << 20;
/// The device heap base: the first page is never allocated, so null-ish
/// pointers trap. Public so fault plans and tests can compute guard
/// offsets relative to the heap without re-declaring the constant.
pub const HEAP_BASE: u64 = 4096;

/// Environment configuration.
///
/// `Hash` so batch workers can pool one reusable environment per distinct
/// configuration (see `rvv-batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvConfig {
    /// Vector register length in bits (the paper sweeps 128..1024).
    pub vlen: u32,
    /// Register-group multiplier kernels are compiled for.
    pub lmul: Lmul,
    /// Spill cost model (see [`rvv_asm::SpillProfile`]).
    pub spill_profile: SpillProfile,
    /// Device memory size in bytes.
    pub mem_bytes: usize,
}

impl EnvConfig {
    /// The paper's headline configuration: VLEN=1024, LMUL=1.
    pub fn paper_default() -> EnvConfig {
        EnvConfig {
            vlen: 1024,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 192 << 20,
        }
    }

    /// Headline config with a different VLEN.
    pub fn with_vlen(vlen: u32) -> EnvConfig {
        EnvConfig {
            vlen,
            ..EnvConfig::paper_default()
        }
    }

    /// Headline config with a different LMUL.
    pub fn with_lmul(lmul: Lmul) -> EnvConfig {
        EnvConfig {
            lmul,
            ..EnvConfig::paper_default()
        }
    }

    /// The architectural kernel-compilation key this environment generates
    /// code under, at element width `sew` (device memory size does not
    /// affect generated code, so it is not part of the key).
    pub fn kernel_config(&self, sew: Sew) -> KernelConfig {
        KernelConfig {
            vlen: self.vlen,
            sew,
            lmul: self.lmul,
        }
    }
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig::paper_default()
    }
}

/// A device vector: a typed view of a buffer in simulated memory.
#[derive(Debug, Clone)]
pub struct SvVector {
    addr: u64,
    len: usize,
    sew: Sew,
}

impl SvVector {
    /// Device byte address of element 0.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element width.
    pub fn sew(&self) -> Sew {
        self.sew
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * self.sew.bytes() as u64
    }
}

/// A heap mark for stack-disciplined temporary allocation
/// (see [`Session::heap_mark`] / [`Session::release_to`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapMark(u64);

/// Which run loop kernel launches go through.
///
/// All engines are architecturally indistinguishable — same results, same
/// counters, same trace events — so switching engines is purely a host
/// performance choice. `Legacy` exists for differential testing and for
/// honest before/after host-throughput measurement; `Fused` is the fastest
/// tier when programs contain the recognized kernel-shaped windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Pre-decoded execution plan with SEW-specialized dispatch
    /// ([`Machine::run_plan`]). The default.
    #[default]
    Plan,
    /// The reference decode-classify-dispatch interpreter
    /// ([`Machine::run_legacy`]).
    Legacy,
    /// The plan engine plus peephole-fused superinstruction windows
    /// ([`Machine::run_fused`]): strip-mine bodies, `vv` maps, scan steps,
    /// and whole-register chains execute as single bulk kernels.
    Fused,
}

impl ExecEngine {
    /// Parse the CLI/CI spelling (`plan`, `legacy`, `fused`),
    /// case-insensitively — `PLAN`, `Fused`, … all resolve, so shell
    /// variables and config files don't need exact casing.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "plan" => Some(ExecEngine::Plan),
            "legacy" => Some(ExecEngine::Legacy),
            "fused" => Some(ExecEngine::Fused),
            _ => None,
        }
    }

    /// Every engine tier, in canonical order — the valid set CLI error
    /// messages list.
    pub const ALL: [ExecEngine; 3] = [ExecEngine::Plan, ExecEngine::Legacy, ExecEngine::Fused];

    /// The canonical lower-case name, inverse of [`ExecEngine::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Plan => "plan",
            ExecEngine::Legacy => "legacy",
            ExecEngine::Fused => "fused",
        }
    }
}

/// The scan-vector-model execution session: per-run state over a shared
/// [`Engine`].
///
/// A session owns what one run needs in isolation — the simulated machine,
/// the device-heap cursor, any attached tracer or fault hook, the armed
/// fuel budget, and the poison flag — while everything shareable (the plan
/// registry, the default run-loop tier, cost-model and fault-policy
/// defaults) lives on the engine it was created from
/// ([`Engine::session`]).
pub struct Session {
    engine: Engine,
    machine: Machine,
    cfg: EnvConfig,
    heap: u64,
    heap_limit: u64,
    tracer: Option<Box<dyn TraceSink>>,
    exec: ExecEngine,
    fault: Option<Box<dyn FaultHook + Send>>,
    /// Cooperative cancellation flag consulted before every instruction
    /// while attached (see [`Session::attach_cancel_token`]).
    cancel: Option<CancelToken>,
    /// `(budget, retired-at-arming)`: a deterministic watchdog. While armed,
    /// kernel launches get `min(DEFAULT_FUEL, budget - spent)` fuel, so a
    /// job cannot retire more than `budget` instructions across all its
    /// launches (see [`Session::set_fuel_budget`]).
    fuel_budget: Option<(u64, u64)>,
    poisoned: bool,
}

/// The historical name for [`Session`], kept so the whole pre-split API
/// surface (`ScanEnv::new`, `ScanEnv::with_cache`, every consumer
/// signature) continues to compile unchanged.
pub type ScanEnv = Session;

/// The cancellation shim [`Session::run`] wraps launches in while a
/// [`CancelToken`] is attached: consults the token before each instruction
/// (counting boundaries so the trap carries the ordinal), then delegates
/// to any attached fault hook. Trapping *before* the instruction means a
/// cancelled launch retires nothing past the observed boundary.
struct CancelCheck<'a> {
    token: CancelToken,
    seq: u64,
    inner: Option<&'a mut (dyn FaultHook + Send + 'static)>,
}

impl FaultHook for CancelCheck<'_> {
    fn before(&mut self, pc: u64, instr: &Instr, mem: Option<&MemAccess>) -> FaultAction {
        self.seq += 1;
        if self.token.check() {
            return FaultAction::Trap(SimError::Cancelled { seq: self.seq });
        }
        match &mut self.inner {
            Some(h) => h.before(pc, instr, mem),
            None => FaultAction::Pass,
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("cfg", &self.cfg)
            .field("heap", &self.heap)
            .field("exec", &self.exec)
            .field("tracer", &self.tracer.is_some())
            .field("fault", &self.fault.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("fuel_budget", &self.fuel_budget)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Build a session over a private default engine (fresh plan registry,
    /// default run-loop tier, no cost model, no fuel budget). This is the
    /// pre-split `ScanEnv::new` behavior, kept as a compatibility shim;
    /// code that shares compiled plans or policy should build an
    /// [`Engine`] and call [`Engine::session`] instead.
    ///
    /// # Panics
    ///
    /// On an invalid configuration ([`Engine::validate`]) — exactly where
    /// the machine constructor asserted before the split. Fallible
    /// construction goes through [`Engine::session`].
    pub fn new(cfg: EnvConfig) -> Session {
        Engine::new()
            .session(cfg)
            .expect("invalid EnvConfig (see Engine::validate)")
    }

    /// Build a session whose private engine compiles kernels into (and
    /// launches them from) an existing shared [`PlanCache`]. Sessions
    /// sharing a registry never recompile a kernel another one already
    /// built for the same `(name, VLEN, SEW, LMUL, spill profile)`.
    /// Compatibility shim over `Engine::builder().plan_cache(..)`; panics
    /// on an invalid configuration like [`Session::new`].
    pub fn with_cache(cfg: EnvConfig, plans: Arc<PlanCache>) -> Session {
        Engine::builder()
            .plan_cache(plans)
            .build()
            .session(cfg)
            .expect("invalid EnvConfig (see Engine::validate)")
    }

    /// Construct the per-run half after the engine validated `cfg`
    /// ([`Engine::session`] is the public entry point).
    pub(crate) fn from_engine(engine: Engine, cfg: EnvConfig) -> Session {
        let machine = Machine::new(MachineConfig {
            vlen: cfg.vlen,
            mem_bytes: cfg.mem_bytes,
        });
        let heap_limit = cfg.mem_bytes as u64 - STACK_BYTES;
        let exec = engine.default_exec_engine();
        let default_fuel = engine.default_fuel_budget();
        let mut session = Session {
            engine,
            machine,
            cfg,
            heap: HEAP_BASE,
            heap_limit,
            tracer: None,
            exec,
            fault: None,
            cancel: None,
            fuel_budget: None,
            poisoned: false,
        };
        session.set_fuel_budget(default_fuel);
        session
    }

    /// Session with the paper's headline configuration (over a private
    /// default engine).
    pub fn paper_default() -> Session {
        Session::new(EnvConfig::paper_default())
    }

    /// The engine this session was created from: the shared context
    /// holding the plan registry and policy defaults.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The plan registry this session compiles into (the engine's).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        self.engine.plan_cache()
    }

    /// Reset the session for reuse: zero the CPU (scalar/vector
    /// registers, `vtype`, counters), release every heap allocation, disarm
    /// all memory guards, detach any tracer and fault hook, and restore
    /// the engine's defaults (run-loop tier and fuel budget — for a
    /// default engine that means [`ExecEngine::Plan`] and no budget, the
    /// pre-split behavior). Cached plans are **not** dropped — they live
    /// in the engine's (possibly shared) registry — so a pooled worker
    /// that resets between jobs relaunches kernels with zero
    /// recompilation. Memory contents are not scrubbed; [`Session::alloc`]
    /// zeroes every allocation it hands out, so a reset session is
    /// observationally identical to a fresh [`Engine::session`] — *including
    /// after a trap*: a kernel aborted mid-flight leaves
    /// `vl`/`vtype`/registers dirty, and `reset` restores all of it (the
    /// reset-after-trap regression test pins this).
    ///
    /// The poison flag ([`Session::poison`]) is deliberately **not**
    /// cleared: a panic may have interrupted host-side bookkeeping at an
    /// arbitrary point, so a poisoned session must be discarded, not
    /// reset.
    pub fn reset(&mut self) {
        self.machine.reset_cpu();
        self.machine.mem.clear_guards();
        self.heap = HEAP_BASE;
        self.tracer = None;
        self.fault = None;
        self.cancel = None;
        self.exec = self.engine.default_exec_engine();
        self.set_fuel_budget(self.engine.default_fuel_budget());
    }

    // ---------------------------------------------------------- snapshots --

    /// Capture a complete, restorable checkpoint of this session: the
    /// full architectural machine state (registers, `vtype`/`vl`,
    /// counters, dirty memory pages, guards — see
    /// [`rvv_sim::MachineSnapshot`]) plus the host-side state the machine
    /// cannot see (configuration, allocator position, run-loop tier
    /// selection, poison flag, and the plan-cache key inventory).
    ///
    /// Snapshot cost is `O(state actually written)`, not `O(mem_bytes)`:
    /// the machine tracks dirty pages, so a session with a 192 MiB
    /// device memory that has touched three pages snapshots three pages.
    ///
    /// Tracers, fault hooks, and the fuel budget are **not** captured
    /// (they hold host-side resources that cannot survive a process
    /// boundary); [`Session::restore`] leaves the first two detached and
    /// re-arms the engine's default budget.
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            cfg: self.cfg,
            heap: self.heap,
            engine: self.exec,
            poisoned: self.poisoned,
            plan_keys: self.engine.plan_cache().keys(),
            machine: self.machine.snapshot(),
        }
    }

    /// Restore this session to a [`Session::snapshot`]ed state.
    ///
    /// The snapshot's configuration must equal this session's — a
    /// snapshot taken at one `(VLEN, LMUL, spill profile, mem_bytes)` is
    /// meaningless under another, so a mismatch is refused with
    /// [`ScanError::Snapshot`] before anything is modified. On success the
    /// machine, heap position, run-loop tier selection, and poison flag
    /// are exactly as captured; tracer and fault hook are detached and
    /// the fuel budget is re-armed to the engine's default — disarmed for
    /// a default engine (see [`Session::snapshot`]). Cached plans are
    /// untouched — they are keyed by configuration and recompile on
    /// demand, so a fresh process restoring a snapshot simply warms its
    /// cache as the resumed run launches kernels.
    pub fn restore(&mut self, snap: &EnvSnapshot) -> ScanResult<()> {
        if snap.cfg != self.cfg {
            return Err(ScanError::Snapshot(format!(
                "config mismatch: snapshot {:?}, session {:?}",
                snap.cfg, self.cfg
            )));
        }
        self.machine.restore(&snap.machine);
        self.heap = snap.heap;
        self.exec = snap.engine;
        self.poisoned = snap.poisoned;
        self.tracer = None;
        self.fault = None;
        self.cancel = None;
        self.set_fuel_budget(self.engine.default_fuel_budget());
        Ok(())
    }

    /// Mark this session as unusable. The batch runner poisons a
    /// session when a job body panics inside it — the unwind may have
    /// left host-side state (allocator bookkeeping, partially staged
    /// buffers) inconsistent in ways [`Session::reset`] cannot see, so the
    /// pool rebuilds a fresh session instead of reusing this one.
    pub fn poison(&mut self) {
        if !self.poisoned {
            self.engine.health().note_session_poisoned();
        }
        self.poisoned = true;
    }

    /// Has this session been [`Session::poison`]ed?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Arm a deterministic per-job watchdog: across all subsequent kernel
    /// launches, at most `budget` further instructions may retire; the
    /// launch that crosses the line traps with
    /// [`SimError::FuelExhausted`]`{ fuel: budget }`. This is the
    /// deterministic stand-in for a wall-clock timeout — it fires at the
    /// same instruction on every run, on every engine, at every thread
    /// count. `None` disarms.
    pub fn set_fuel_budget(&mut self, budget: Option<u64>) {
        self.fuel_budget = budget.map(|b| (b, self.machine.counters.total()));
    }

    /// The armed watchdog budget, if any.
    pub fn fuel_budget(&self) -> Option<u64> {
        self.fuel_budget.map(|(b, _)| b)
    }

    /// Attach a [`FaultHook`]: every subsequent kernel launch runs through
    /// the faulted drivers ([`Machine::run_plan_faulted`] /
    /// [`Machine::run_legacy_faulted`]), which consult the hook before each
    /// instruction. Replaces (and returns) any previously attached hook.
    /// While a hook is attached, launches are *not* traced (fault injection
    /// and trace capture are separate experiments).
    pub fn attach_fault_hook(
        &mut self,
        hook: Box<dyn FaultHook + Send>,
    ) -> Option<Box<dyn FaultHook + Send>> {
        self.fault.replace(hook)
    }

    /// Detach and return the current fault hook. Subsequent launches go
    /// back to the unfaulted fast path.
    pub fn detach_fault_hook(&mut self) -> Option<Box<dyn FaultHook + Send>> {
        self.fault.take()
    }

    /// Is a fault hook attached?
    pub fn has_fault_hook(&self) -> bool {
        self.fault.is_some()
    }

    /// Attach a [`CancelToken`]: every subsequent kernel launch consults
    /// the token before each instruction, at the same retirement-order
    /// boundary a [`FaultHook`] runs at, in every [`ExecEngine`] tier. A
    /// launch that observes the token cancelled traps with
    /// [`SimError::Cancelled`] carrying the boundary ordinal and retires
    /// nothing past it, so partial counters are deterministic for a
    /// deterministic trip point ([`CancelToken::after_checks`]). Composes
    /// with an attached fault hook (the token is consulted first) and with
    /// the fuel watchdog (whichever line is crossed first wins). Like a
    /// fault hook, an attached token suppresses tracing, and
    /// [`Session::reset`] / [`Session::restore`] detach it. Replaces (and
    /// returns) any previously attached token.
    pub fn attach_cancel_token(&mut self, token: CancelToken) -> Option<CancelToken> {
        self.cancel.replace(token)
    }

    /// Detach and return the current cancel token. Subsequent launches no
    /// longer consult it.
    pub fn detach_cancel_token(&mut self) -> Option<CancelToken> {
        self.cancel.take()
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> EnvConfig {
        self.cfg
    }

    /// The run loop kernel launches use (see [`ExecEngine`]). Not to be
    /// confused with [`Session::engine`], the shared context this session
    /// was created from.
    pub fn exec_engine(&self) -> ExecEngine {
        self.exec
    }

    /// Select the run loop for subsequent launches. Cached kernels stay
    /// valid — a plan carries its source program, so either run loop can
    /// execute it. [`Session::reset`] reverts to the engine's default.
    pub fn set_exec_engine(&mut self, exec: ExecEngine) {
        self.exec = exec;
    }

    /// Fusion activity (windows committed, ops retired through fused
    /// kernels) accumulated by [`ExecEngine::Fused`] launches on this
    /// session's machine. Diagnostic only — never part of
    /// [`rvv_sim::Counters`] or
    /// snapshots, so it cannot perturb cross-engine equality.
    pub fn fused_stats(&self) -> rvv_sim::FusedStats {
        self.machine.fused_stats
    }

    /// Borrow the machine (counters, memory inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutably borrow the machine (tests poke state directly).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Total dynamic instructions retired in this session so far.
    pub fn retired(&self) -> u64 {
        self.machine.counters.total()
    }

    /// The device stack region (`[heap_limit, mem_bytes)`): the address
    /// range spill frames live in. Profilers classify memory traffic into
    /// this region as spill/stack traffic.
    pub fn stack_region(&self) -> Range<u64> {
        self.heap_limit..self.cfg.mem_bytes as u64
    }

    // ------------------------------------------------------------- tracing --

    /// Attach a [`TraceSink`]: every subsequent kernel launch runs through
    /// [`Machine::run_traced`] and every phase entered via
    /// [`Session::phase`] is forwarded to the sink. Replaces (and returns)
    /// any previously attached sink.
    pub fn attach_tracer(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.tracer.replace(sink)
    }

    /// Detach and return the current sink (typically to read its report).
    /// Subsequent launches go back to the untraced fast path.
    pub fn detach_tracer(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take()
    }

    /// Is a sink attached?
    pub fn has_tracer(&self) -> bool {
        self.tracer.is_some()
    }

    /// Run `f` inside a named phase. With a sink attached, the sink sees
    /// `phase_begin(name)` / `phase_end(name)` around everything `f`
    /// launches; phases nest. Without a sink this is a plain call — the
    /// primitives wrap their bodies in phases unconditionally and rely on
    /// this being free.
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce(&mut ScanEnv) -> T) -> T {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.phase_begin(name);
        }
        let out = f(self);
        if let Some(t) = self.tracer.as_deref_mut() {
            t.phase_end(name);
        }
        out
    }

    // ---------------------------------------------------------- allocation --

    /// Allocate a zero-initialized device vector of `len` elements.
    pub fn alloc(&mut self, sew: Sew, len: usize) -> ScanResult<SvVector> {
        let bytes = len as u64 * sew.bytes() as u64;
        // 64-byte align every allocation.
        let addr = (self.heap + 63) & !63;
        let end = addr
            .checked_add(bytes)
            .ok_or(ScanError::OutOfDeviceMemory {
                requested: bytes,
                available: 0,
            })?;
        if end > self.heap_limit {
            return Err(ScanError::OutOfDeviceMemory {
                requested: bytes,
                available: self.heap_limit.saturating_sub(addr),
            });
        }
        self.heap = end;
        // Fresh allocations are zeroed (bump region starts zeroed, but the
        // space may be reused after release_to). Guard-exempt: arming a
        // guard inside the heap must fail the kernel that overruns into it,
        // not the allocator.
        self.machine.mem.fill(addr, bytes, 0)?;
        Ok(SvVector { addr, len, sew })
    }

    /// Allocate with guard regions armed on both sides: any kernel that
    /// under- or overruns the buffer traps with
    /// [`rvv_sim::SimError::GuardHit`] instead of corrupting a neighbour.
    /// Returns the vector and the two guard handles (disarm with
    /// [`rvv_sim::Memory::remove_guard`] via [`Session::machine_mut`]).
    pub fn alloc_guarded(&mut self, sew: Sew, len: usize) -> ScanResult<(SvVector, usize, usize)> {
        const GUARD: usize = 64;
        let lo = self.alloc(Sew::E8, GUARD)?;
        let v = self.alloc(sew, len)?;
        let hi = self.alloc(Sew::E8, GUARD)?;
        let g1 = self
            .machine
            .mem
            .add_guard(lo.addr()..lo.addr() + GUARD as u64);
        let g2 = self
            .machine
            .mem
            .add_guard(hi.addr()..hi.addr() + GUARD as u64);
        Ok((v, g1, g2))
    }

    /// Current heap position, for stack-disciplined temporaries.
    pub fn heap_mark(&self) -> HeapMark {
        HeapMark(self.heap)
    }

    /// Release every allocation made after `mark`. Vectors allocated after
    /// the mark become dangling; dropping them is the caller's contract
    /// (exactly like a region allocator).
    pub fn release_to(&mut self, mark: HeapMark) {
        debug_assert!(mark.0 <= self.heap);
        self.heap = mark.0;
    }

    /// Allocate and fill from host `u32` data (e32).
    pub fn from_u32(&mut self, data: &[u32]) -> ScanResult<SvVector> {
        let v = self.alloc(Sew::E32, data.len())?;
        self.machine.mem.write_u32_slice(v.addr, data);
        Ok(v)
    }

    /// Allocate and fill from host `u64` data (e64).
    pub fn from_u64(&mut self, data: &[u64]) -> ScanResult<SvVector> {
        let v = self.alloc(Sew::E64, data.len())?;
        self.machine.mem.write_u64_slice(v.addr, data);
        Ok(v)
    }

    /// Allocate and fill from width-truncated `u64` element values at any
    /// SEW.
    pub fn from_elems(&mut self, sew: Sew, data: &[u64]) -> ScanResult<SvVector> {
        let v = self.alloc(sew, data.len())?;
        for (i, &x) in data.iter().enumerate() {
            self.machine.mem.store(
                v.addr + i as u64 * sew.bytes() as u64,
                sew.bytes() as u64,
                x,
            )?;
        }
        Ok(v)
    }

    /// Read back as `u32` (must be e32).
    pub fn to_u32(&self, v: &SvVector) -> Vec<u32> {
        assert_eq!(v.sew, Sew::E32, "to_u32 requires an e32 vector");
        self.machine.mem.read_u32_slice(v.addr, v.len)
    }

    /// Read back element values (zero-extended) at the vector's SEW.
    /// Guard-exempt ([`rvv_sim::Memory::peek`]): reading results back is
    /// host staging, not simulated execution, and must work even while
    /// guards are armed over the buffer.
    pub fn to_elems(&self, v: &SvVector) -> Vec<u64> {
        (0..v.len)
            .map(|i| {
                self.machine
                    .mem
                    .peek(
                        v.addr + i as u64 * v.sew.bytes() as u64,
                        v.sew.bytes() as u64,
                    )
                    .expect("vector within bounds by construction")
            })
            .collect()
    }

    /// A typed sub-view of a device vector: elements `[start, start+len)`.
    pub fn slice(&self, v: &SvVector, start: usize, len: usize) -> ScanResult<SvVector> {
        let end = start.checked_add(len).ok_or(ScanError::LengthMismatch {
            what: "slice",
            a: usize::MAX,
            b: v.len,
        })?;
        if end > v.len {
            return Err(ScanError::LengthMismatch {
                what: "slice",
                a: end,
                b: v.len,
            });
        }
        Ok(SvVector {
            addr: v.addr + (start as u64) * v.sew.bytes() as u64,
            len,
            sew: v.sew,
        })
    }

    /// Host-side single-element store (staging/glue, not simulated
    /// execution — costs no instructions and is guard-exempt).
    pub fn store_elem(&mut self, v: &SvVector, i: usize, value: u64) -> ScanResult<()> {
        assert!(i < v.len, "element index out of range");
        let e = v.sew.bytes() as u64;
        self.machine.mem.poke(v.addr + i as u64 * e, e, value)?;
        Ok(())
    }

    /// Host-side single-element load (zero-extended, guard-exempt).
    pub fn load_elem(&self, v: &SvVector, i: usize) -> u64 {
        assert!(i < v.len, "element index out of range");
        let e = v.sew.bytes() as u64;
        self.machine
            .mem
            .peek(v.addr + i as u64 * e, e)
            .expect("vector in bounds")
    }

    /// Overwrite an existing device vector from host data (e32).
    pub fn write_u32(&mut self, v: &SvVector, data: &[u32]) -> ScanResult<()> {
        if data.len() != v.len {
            return Err(ScanError::LengthMismatch {
                what: "write_u32",
                a: data.len(),
                b: v.len,
            });
        }
        self.machine.mem.write_u32_slice(v.addr, data);
        Ok(())
    }

    // ------------------------------------------------------------- kernels --

    /// Fetch or build a kernel, pre-compiled to a [`CompiledPlan`]. `name`
    /// must uniquely identify the generated code together with the
    /// session's full architectural configuration — the registry key is
    /// `(name, VLEN, SEW, LMUL, spill profile)` ([`EnvConfig::kernel_config`]
    /// plus the profile), so kernels built under one configuration are never
    /// served to a session with another, even when many sessions
    /// share one registry.
    pub fn kernel(
        &mut self,
        name: &str,
        sew: Sew,
        build: impl FnOnce(&EnvConfig, Sew) -> ScanResult<Program>,
    ) -> ScanResult<Arc<CompiledPlan>> {
        self.engine.plan_cache().get_or_compile(
            name,
            self.cfg.kernel_config(sew),
            self.cfg.spill_profile,
            || build(&self.cfg, sew),
        )
    }

    /// Launch a compiled kernel with arguments in `a0..`, returning the run
    /// report and the kernel's `a0` result. Dispatches through the selected
    /// [`ExecEngine`].
    pub fn run(&mut self, plan: &CompiledPlan, args: &[u64]) -> ScanResult<(RunReport, u64)> {
        assert!(args.len() <= 8, "at most 8 kernel arguments");
        for (i, &a) in args.iter().enumerate() {
            self.machine.set_xreg(XReg::arg(i as u8), a);
        }
        self.machine
            .set_xreg(XReg::SP, self.cfg.mem_bytes as u64 - 64);
        // An armed watchdog caps this launch at whatever is left of the
        // job's budget; exhausting it reports the *budget*, not the
        // remainder, so the trap message is the same wherever in the job
        // the line is crossed. The budget line lies inside this launch
        // only when the metered allocation IS the remaining budget — a
        // launch capped at `DEFAULT_FUEL` below the line can exhaust its
        // own fuel without crossing it.
        let (fuel, watchdog) = match self.fuel_budget {
            Some((budget, base)) => {
                let spent = self.machine.counters.total() - base;
                let remaining = budget.saturating_sub(spent);
                (
                    DEFAULT_FUEL.min(remaining),
                    (remaining <= DEFAULT_FUEL).then_some(budget),
                )
            }
            None => (DEFAULT_FUEL, None),
        };
        // An attached cancel token routes the launch through the faulted
        // drivers behind a shim that consults the token first and then
        // delegates to any attached fault hook — the same per-instruction
        // boundary in every tier, so a deterministic trip point cancels at
        // the same ordinal with the same partial counters on Plan, Legacy,
        // and Fused alike.
        let mut shim;
        let hook: Option<&mut (dyn FaultHook + '_)> =
            match (&self.cancel, self.fault.as_deref_mut()) {
                (Some(token), inner) => {
                    shim = CancelCheck {
                        token: token.clone(),
                        seq: 0,
                        inner,
                    };
                    Some(&mut shim)
                }
                (None, Some(h)) => Some(h),
                (None, None) => None,
            };
        let report = match (self.exec, hook, self.tracer.as_deref_mut()) {
            (ExecEngine::Plan, Some(hook), _) => self.machine.run_plan_faulted(plan, fuel, hook),
            (ExecEngine::Fused, Some(hook), _) => self.machine.run_fused_faulted(plan, fuel, hook),
            (ExecEngine::Legacy, Some(hook), _) => {
                self.machine.run_legacy_faulted(plan.program(), fuel, hook)
            }
            (ExecEngine::Plan, None, Some(sink)) => self.machine.run_plan_traced(plan, fuel, sink),
            (ExecEngine::Plan, None, None) => self.machine.run_plan(plan, fuel),
            (ExecEngine::Fused, None, Some(sink)) => {
                self.machine.run_fused_traced(plan, fuel, sink)
            }
            (ExecEngine::Fused, None, None) => self.machine.run_fused(plan, fuel),
            (ExecEngine::Legacy, None, Some(sink)) => {
                self.machine.run_legacy_traced(plan.program(), fuel, sink)
            }
            (ExecEngine::Legacy, None, None) => self.machine.run_legacy(plan.program(), fuel),
        };
        // The run loop is the only source of `FuelExhausted`, and it always
        // carries the launch's metered fuel (injected fuel faults trap as
        // `SimError::InjectedFault` — see `rvv-fault` — and pass through
        // unrewritten). So when the budget line lies inside this launch,
        // exhausting the metered allocation *is* the watchdog firing:
        // report the budget.
        let report = report.map_err(|e| match (e, watchdog) {
            (SimError::FuelExhausted { fuel: f }, Some(b)) if f == fuel => {
                SimError::FuelExhausted { fuel: b }
            }
            (e, _) => e,
        })?;
        Ok((report, self.machine.xreg(XReg::arg(0))))
    }

    /// [`Session::run`], but transactional: on a trap the machine state
    /// and heap position are rolled back to what they were at entry, so
    /// the failed launch leaves no trace — no dirty `vl`/`vtype`, no
    /// half-written output buffer, no leaked temporaries. The error is
    /// still returned; only the *state damage* is undone.
    ///
    /// This is the checkpoint-grade alternative to
    /// [`Session::reset`]-after-trap: reset wipes everything (all staged
    /// vectors included), while `run_atomic` surgically reverts just the
    /// failed launch, so a caller holding live device vectors can handle
    /// the error and continue. Costs one machine snapshot (`O(dirty
    /// pages)`) per launch; hot loops that never expect traps should keep
    /// using [`Session::run`].
    ///
    /// Retired-instruction counters are part of the rollback: a rolled
    /// back launch retires nothing, keeping [`Session::retired`]
    /// deterministic across trap-and-retry schedules.
    pub fn run_atomic(
        &mut self,
        plan: &CompiledPlan,
        args: &[u64],
    ) -> ScanResult<(RunReport, u64)> {
        let before = self.machine.snapshot();
        let heap = self.heap;
        match self.run(plan, args) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.machine.restore(&before);
                self.heap = heap;
                Err(e)
            }
        }
    }

    /// [`Session::run`] for an ad-hoc [`Program`]: compiles a throwaway
    /// plan and launches it. Tests and one-shot glue use this; hot paths
    /// should go through the [`Session::kernel`] cache.
    pub fn run_program(&mut self, program: &Program, args: &[u64]) -> ScanResult<(RunReport, u64)> {
        let plan = CompiledPlan::compile(program.clone());
        self.run(&plan, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut env = ScanEnv::new(EnvConfig {
            vlen: 128,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 1 << 22,
        });
        let v = env.from_u32(&[1, 2, 3, 4]).unwrap();
        assert_eq!(env.to_u32(&v), vec![1, 2, 3, 4]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.bytes(), 16);
        let w = env.from_u64(&[u64::MAX, 5]).unwrap();
        assert_eq!(env.to_elems(&w), vec![u64::MAX, 5]);
        // Distinct allocations don't overlap.
        assert!(w.addr() >= v.addr() + v.bytes());
    }

    #[test]
    fn alloc_is_zeroed_even_after_release() {
        let mut env = ScanEnv::new(EnvConfig {
            vlen: 128,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 1 << 22,
        });
        let mark = env.heap_mark();
        let v = env.from_u32(&[7, 7, 7]).unwrap();
        let addr = v.addr();
        env.release_to(mark);
        let w = env.alloc(Sew::E32, 3).unwrap();
        assert_eq!(w.addr(), addr, "region reuse");
        assert_eq!(env.to_u32(&w), vec![0, 0, 0]);
    }

    #[test]
    fn guarded_alloc_catches_kernel_overrun() {
        use crate::primitives::p_add;
        let mut env = ScanEnv::paper_default();
        let (v, g1, g2) = env.alloc_guarded(Sew::E32, 10).unwrap();
        // In-bounds use is fine.
        p_add(&mut env, &v, 1).unwrap();
        // A kernel told the buffer is much longer than it is crosses the
        // alignment slack and hits the high guard. (The guard begins at the
        // next 64-byte boundary, so small overruns land in the slack — the
        // guard catches buffer-sized mistakes, not off-by-one elements.)
        let p = env
            .kernel("elem_vx_Add", Sew::E32, |_, _| unreachable!("cached"))
            .unwrap();
        let r = env.run(&p, &[40, v.addr(), 1]);
        assert!(
            matches!(
                r,
                Err(crate::ScanError::Sim(rvv_sim::SimError::GuardHit { .. }))
            ),
            "overrun must trap: {r:?}"
        );
        // Disarmed guards stop trapping.
        env.machine_mut().mem.remove_guard(g1);
        env.machine_mut().mem.remove_guard(g2);
        env.run(&p, &[40, v.addr(), 1]).unwrap();
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut env = ScanEnv::new(EnvConfig {
            vlen: 128,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 1 << 21, // 2 MiB: 1 MiB stack + ~1 MiB heap
        });
        let r = env.alloc(Sew::E32, 1 << 20); // 4 MiB request
        assert!(matches!(r, Err(ScanError::OutOfDeviceMemory { .. })));
    }

    #[test]
    fn kernel_cache_reuses_programs() {
        let mut env = ScanEnv::paper_default();
        let mut builds = 0;
        for _ in 0..3 {
            let b = &mut builds;
            let _ = env
                .kernel("nop", Sew::E32, |_, _| {
                    *b += 1;
                    Ok(Program::new("nop", vec![rvv_isa::Instr::Ecall]))
                })
                .unwrap();
        }
        assert_eq!(builds, 1);
    }

    #[test]
    fn run_sets_args_and_returns_a0() {
        let mut env = ScanEnv::paper_default();
        // Kernel: a0 = a0 + a1; ecall.
        let p = Program::new(
            "sum",
            vec![
                rvv_isa::Instr::Op {
                    op: rvv_isa::AluOp::Add,
                    rd: XReg::arg(0),
                    rs1: XReg::arg(0),
                    rs2: XReg::arg(1),
                },
                rvv_isa::Instr::Ecall,
            ],
        );
        let (report, a0) = env.run_program(&p, &[40, 2]).unwrap();
        assert_eq!(a0, 42);
        assert_eq!(report.retired, 2);
    }

    #[test]
    fn engines_agree_and_share_the_kernel_cache() {
        use crate::primitives::p_add;
        let mut plan_env = ScanEnv::paper_default();
        let mut legacy_env = ScanEnv::paper_default();
        legacy_env.set_exec_engine(ExecEngine::Legacy);
        assert_eq!(plan_env.exec_engine(), ExecEngine::Plan);
        assert_eq!(legacy_env.exec_engine(), ExecEngine::Legacy);
        let data: Vec<u32> = (0..137).map(|i| i * 3 + 1).collect();
        let a = plan_env.from_u32(&data).unwrap();
        let b = legacy_env.from_u32(&data).unwrap();
        p_add(&mut plan_env, &a, 9).unwrap();
        p_add(&mut legacy_env, &b, 9).unwrap();
        assert_eq!(plan_env.to_u32(&a), legacy_env.to_u32(&b));
        assert_eq!(plan_env.retired(), legacy_env.retired());
        // Switching engines reuses the cached plan (its source rides along).
        legacy_env.set_exec_engine(ExecEngine::Plan);
        p_add(&mut legacy_env, &b, 1).unwrap();
    }
}
