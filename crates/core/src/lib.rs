//! # scanvec — the scan vector model for the RISC-V Vector extension
//!
//! This crate is the paper's primary contribution rebuilt as a library:
//! Blelloch's **scan vector model** — elementwise, permutation, and scan
//! primitive classes plus the derived operations (`enumerate`, `split`,
//! `pack`) — implemented as strip-mined RVV kernels that execute on the
//! workspace's functional simulator ([`rvv_sim`]) and are measured in
//! dynamic instructions, exactly like the paper measures on Spike.
//!
//! ## Layers
//!
//! * [`Engine`] — the immutable, `Arc`-shareable execution context: the
//!   plan registry, default run-loop tier, optional cost model, and fault
//!   policy defaults, shared by every session created from it.
//! * [`Session`] (alias [`ScanEnv`]) — per-run state created with
//!   [`Engine::session`]: the simulated machine, staged device vectors,
//!   tracer/fault-hook/fuel attachments, and the poison flag.
//! * [`plan_cache`] — the thread-safe [`PlanCache`] registry behind the
//!   engine's kernel caching: `Arc`-shared compiled plans, one compile per
//!   configuration even across a worker pool (the `rvv-batch` sweep engine
//!   builds on it).
//! * [`primitives`] — the public operations over device vectors, each
//!   returning the dynamic instruction count of its launch, plus the
//!   [`primitives::baseline`] scalar counterparts the paper compares with.
//! * [`kernels`] — the generators emitting each kernel (public so benches
//!   and tests can inspect and instrument the generated code).
//! * [`native`] — pure-Rust oracle implementations defining the semantics;
//!   property tests assert `simulated == native`.
//! * [`ops`] — the operator algebra ([`ops::ScanOp`]) with identities.
//! * [`segment`] — head-flags / lengths / head-pointers segment
//!   descriptors and conversions (paper §5 discusses all three; head-flags
//!   is what the kernels consume).
//! * [`typed`] — [`typed::DeviceVec<T>`], a statically-typed wrapper over
//!   device vectors for host code.
//!
//! ## Quick example
//!
//! ```
//! use scanvec::ScanEnv;
//! use scanvec::primitives::{plus_scan, baseline};
//!
//! let mut env = ScanEnv::paper_default(); // VLEN=1024, LMUL=1
//! let v = env.from_u32(&[3, 1, 7, 0, 4, 1, 6, 3]).unwrap();
//! let vector_cost = plus_scan(&mut env, &v).unwrap();
//! assert_eq!(env.to_u32(&v), vec![3, 4, 11, 11, 15, 16, 22, 25]);
//!
//! let w = env.from_u32(&[3, 1, 7, 0, 4, 1, 6, 3]).unwrap();
//! let scalar_cost = baseline::plus_scan(&mut env, &w).unwrap();
//! assert_eq!(env.to_u32(&w), env.to_u32(&v));
//! // Dynamic instruction counts are the paper's metric.
//! assert!(vector_cost > 0 && scalar_cost > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod kernels;
pub mod native;
pub mod ops;
pub mod paper;
pub mod plan_cache;
pub mod primitives;
pub mod segment;
mod session;
pub mod snapshot;
pub mod typed;

pub use engine::{Engine, EngineBuilder, EngineHealth};
pub use error::{ScanError, ScanResult};
pub use ops::ScanOp;
pub use plan_cache::PlanCache;
pub use primitives::ScanKind;
pub use rvv_sim::CancelToken;
pub use segment::Segments;
pub use session::{EnvConfig, ExecEngine, HeapMark, ScanEnv, Session, SvVector, HEAP_BASE};
pub use snapshot::EnvSnapshot;
pub use typed::{DeviceVec, SvElement};
