//! Segmented scan kernel (paper §5, Listing 10 and Figure 4).
//!
//! The strip body follows the paper exactly:
//!
//! 1. Load data and head flags; derive the **carry mask** with
//!    `vmsne` + `vmsbf` (elements before the strip's first segment head —
//!    the only ones that may absorb the carry from earlier strips).
//! 2. Force `flags[0] = 1` (`vmv.s.x`) so element 0 never accumulates
//!    across the strip boundary inside the ladder.
//! 3. In-register *segmented* scan ladder: each round masks the combine by
//!    `flags != 1`, then propagates the flags themselves with
//!    `vslideup` + `vor` (Figure 4's mask derivation — the mask register
//!    file has no slide instructions, so flags live in a full data vector,
//!    exactly as the paper notes).
//! 4. Combine the carry into the masked prefix, store, and pull the next
//!    carry from the last element.
//!
//! Vector values: `x`, `flags`, `y`, `ident`, `one`, `fs` — **six** live
//! LMUL-wide values. At LMUL=8 only three aligned groups exist, so this
//! kernel spills; that is the entire Table 5/6 story, and it emerges here
//! from the allocator rather than from a hand-tuned constant.

use super::{advance_and_loop, kb, vtype_of, T_CARRY, T_OFF, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::ops::ScanOp;
use crate::session::EnvConfig;
use rvv_isa::{Instr, MaskOp, Sew, VCmp, VReg, XReg};
use rvv_sim::Program;

/// In-place segmented inclusive scan.
///
/// Args: `a0` = n, `a1` = data ptr (in/out), `a2` = head-flags ptr
/// (same element width as the data).
pub fn build_seg_scan(cfg: &EnvConfig, sew: Sew, op: ScanOp) -> ScanResult<Program> {
    use rvv_asm::ValueKind;
    let t_ident = XReg::new(15); // a5: identity constant
    let t_one = XReg::new(16); // a6: constant 1
    let mut k = kb(cfg, &format!("seg_scan_{}", op.name()), sew);
    // `flags` is declared first so it stays pinned under LMUL=8 pressure
    // (it is touched three times per ladder round, `x` twice). `y`/`fs` are
    // statement-local temporaries; the identity/one fills rematerialize
    // from scalars, as a compiler would.
    let vs = k.declare_kinds(&[
        ("flags", ValueKind::Normal),
        ("x", ValueKind::Normal),
        ("y", ValueKind::Temp),
        ("fs", ValueKind::Temp),
        ("ident", ValueKind::Remat(t_ident)),
        ("one", ValueKind::Remat(t_one)),
    ]);
    let (flags, x, y, fs, ident, one) = (vs[0], vs[1], vs[2], vs[3], vs[4], vs[5]);
    let vop = op.valu();
    let identity = op.identity(sew) as i64;
    let head_mask = VReg::new(1); // segment heads of the strip
    let carry_mask = VReg::new(2); // vmsbf(head_mask)

    k.prologue();
    k.b.mark("setup");
    let done = k.b.label();
    k.b.li(T_CARRY, identity);
    k.b.beqz(XReg::arg(0), done);

    // One-time setup (paper: vsetvlmax + two vmv.v.x broadcasts).
    k.b.vsetvli(T_TMP, XReg::ZERO, vtype_of(cfg, sew));
    k.b.li(t_ident, identity);
    k.b.li(t_one, 1);
    k.init_remat(ident);
    k.init_remat(one);

    let head = k.b.label();
    k.b.mark("strip_load");
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    {
        let rx = k.vout(x);
        k.b.vle(sew, rx, XReg::arg(1));
        k.vflush(x, rx);
    }
    {
        let rf = k.vout(flags);
        k.b.vle(sew, rf, XReg::arg(2));
        // head_mask = (flags != 0); carry_mask = set-before-first(head_mask).
        k.b.vcmp_vi(VCmp::Ne, head_mask, rf, 0, true);
        k.b.vmsbf(carry_mask, head_mask);
        // flags[0] = 1: the strip's first element starts its own ladder.
        k.b.vmv_sx(rf, t_one);
        k.vflush(flags, rf);
    }

    // In-register segmented scan ladder.
    k.b.mark("ladder");
    let inner_done = k.b.label();
    k.b.li(T_OFF, 1);
    k.b.bgeu(T_OFF, T_VL, inner_done);
    let inner = k.b.label();
    k.b.bind(inner);
    {
        // v0 = (flags != 1): elements allowed to accumulate this round.
        let rf = k.vin(flags);
        k.b.vcmp_vi(VCmp::Ne, VReg::V0, rf, 1, true);
        // y = slideup(ident, x, off); x = op(x, y) under v0.
        let ry = k.vout(y);
        k.vfill(ry, ident);
        let rx = k.vin(x);
        k.b.vslideup_vx(ry, rx, T_OFF, true);
        let ry = k.vin(y);
        k.b.vop_vv(vop, rx, rx, ry, false);
        k.vflush(x, rx);
        // fs = slideup(one, flags, off); flags |= fs.
        let rfs = k.vout(fs);
        k.vfill(rfs, one);
        let rf = k.vin(flags);
        k.b.vslideup_vx(rfs, rf, T_OFF, true);
        let rfs = k.vin(fs);
        k.b.vop_vv(rvv_isa::VAluOp::Or, rf, rf, rfs, true);
        k.vflush(flags, rf);
    }
    k.b.slli(T_OFF, T_OFF, 1);
    k.b.bltu(T_OFF, T_VL, inner);
    k.b.bind(inner_done);
    k.b.mark("carry_store");

    // Fold the carry into elements before the first segment head.
    k.b.raw(Instr::VMaskLogic {
        op: MaskOp::And,
        vd: VReg::V0,
        vs2: carry_mask,
        vs1: carry_mask,
    });
    {
        let rx = k.vin(x);
        k.b.vop_vx(vop, rx, rx, T_CARRY, false);
        k.b.vse(sew, rx, XReg::arg(1));
        // carry = x[vl-1] (post-carry value still in the register).
        k.b.addi(T_TMP, T_VL, -1);
        let ry = k.vout(y);
        k.b.vslidedown_vx(ry, rx, T_TMP, true);
        k.b.vmv_xs(T_CARRY, ry);
    }

    k.b.mark("advance");
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use crate::session::{EnvConfig, ScanEnv};
    use rvv_asm::SpillProfile;
    use rvv_isa::Lmul;

    fn env(vlen: u32, lmul: Lmul) -> ScanEnv {
        ScanEnv::new(EnvConfig {
            vlen,
            lmul,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 16 << 20,
        })
    }

    fn run_seg(e: &mut ScanEnv, op: ScanOp, data: &[u32], flags: &[u32]) -> Vec<u32> {
        let v = e.from_u32(data).unwrap();
        let f = e.from_u32(flags).unwrap();
        let p = build_seg_scan(&e.config(), Sew::E32, op).unwrap();
        e.run_program(&p, &[data.len() as u64, v.addr(), f.addr()])
            .unwrap();
        e.to_u32(&v)
    }

    #[test]
    fn matches_oracle_small() {
        let data = [5u32, 1, 2, 4, 8, 16, 3, 3];
        let flags = [1u32, 0, 1, 0, 0, 1, 0, 1];
        let mut e = env(128, Lmul::M1);
        let got = run_seg(&mut e, ScanOp::Plus, &data, &flags);
        assert_eq!(got, vec![5, 6, 2, 6, 14, 16, 19, 3]);
    }

    #[test]
    fn segments_crossing_strip_boundaries() {
        // VLEN=128 e32 m1 -> 4-element strips; make segments straddle them.
        let n = 37;
        let data: Vec<u32> = (0..n).map(|i| (i * 13 + 1) as u32).collect();
        let mut flags = vec![0u32; n];
        for i in [0usize, 3, 5, 11, 12, 30] {
            flags[i] = 1;
        }
        let mut e = env(128, Lmul::M1);
        let got = run_seg(&mut e, ScanOp::Plus, &data, &flags);
        let want: Vec<u32> = native::u32v::seg_scan_inclusive(ScanOp::Plus, &data, &flags);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_oracle_across_configs_and_ops() {
        let n = 203;
        let data: Vec<u32> = (0..n).map(|i| ((i * 2654435761u64) % 509) as u32).collect();
        let flags: Vec<u32> = (0..n)
            .map(|i| u32::from(i == 0 || (i * 7919) % 11 == 3))
            .collect();
        for vlen in [128, 512, 1024] {
            for lmul in [Lmul::F2, Lmul::M1, Lmul::M2, Lmul::M4, Lmul::M8] {
                for &op in &[ScanOp::Plus, ScanOp::Max, ScanOp::Min, ScanOp::Xor] {
                    let mut e = env(vlen, lmul);
                    let got = run_seg(&mut e, op, &data, &flags);
                    let want = native::u32v::seg_scan_inclusive(op, &data, &flags);
                    assert_eq!(got, want, "vlen={vlen} lmul={lmul:?} op={op}");
                }
            }
        }
    }

    #[test]
    fn spilling_lmul8_still_correct() {
        // The LMUL=8 build spills 5 of 6 values; results must not change.
        let n = 1000;
        let data: Vec<u32> = (0..n).map(|i| (i % 97) as u32).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 129 == 0)).collect();
        let mut e1 = env(1024, Lmul::M1);
        let mut e8 = env(1024, Lmul::M8);
        let r1 = run_seg(&mut e1, ScanOp::Plus, &data, &flags);
        let r8 = run_seg(&mut e8, ScanOp::Plus, &data, &flags);
        assert_eq!(r1, r8);
        assert_eq!(
            r1,
            native::u32v::seg_scan_inclusive(ScanOp::Plus, &data, &flags)
        );
    }

    #[test]
    fn leading_headless_run_is_a_carry_of_identity() {
        // flags[0] == 0 is tolerated by the kernel: the first run gets a
        // carry of the identity (matches the paper's code and the oracle).
        let data = [7u32, 7, 7, 7];
        let flags = [0u32, 0, 1, 0];
        let mut e = env(128, Lmul::M1);
        let got = run_seg(&mut e, ScanOp::Plus, &data, &flags);
        assert_eq!(got, vec![7, 14, 7, 14]);
    }

    #[test]
    fn every_element_its_own_segment_is_identity_map() {
        let data: Vec<u32> = (10..30).collect();
        let flags = vec![1u32; 20];
        let mut e = env(128, Lmul::M2);
        let got = run_seg(&mut e, ScanOp::Plus, &data, &flags);
        assert_eq!(got, data);
    }

    #[test]
    fn one_segment_equals_unsegmented() {
        let n = 77;
        let data: Vec<u32> = (0..n).map(|i| (i * i) as u32).collect();
        let mut flags = vec![0u32; n as usize];
        flags[0] = 1;
        let mut e = env(256, Lmul::M1);
        let got = run_seg(&mut e, ScanOp::Plus, &data, &flags);
        assert_eq!(got, native::u32v::scan_inclusive(ScanOp::Plus, &data));
    }

    #[test]
    fn seg_scan_spills_only_at_m8() {
        for lmul in Lmul::ALL {
            let cfg = EnvConfig {
                lmul,
                ..EnvConfig::paper_default()
            };
            let mut k = super::super::kb(&cfg, "probe", Sew::E32);
            k.declare(&["x", "flags", "y", "ident", "one", "fs"]);
            assert_eq!(k.spills(), lmul == Lmul::M8, "at {lmul}");
        }
    }
}
