//! Unsegmented scan kernel (paper §4.3, Listing 6 and Figure 1).
//!
//! Structure per strip: load, in-register scan ladder (`⌈lg vl⌉` rounds of
//! `vslideup` + combine, with the destination pre-filled with the operator's
//! identity), combine with the running carry, store, update the carry from
//! the last element. The exclusive variant shifts the strip's result one
//! element up with `vslide1up`, inserting the incoming carry — so both
//! variants cost the same per strip.

use super::{advance_and_loop, kb, vtype_of, T_CARRY, T_OFF, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::ops::ScanOp;
use crate::session::EnvConfig;
use rvv_isa::{Sew, XReg};
use rvv_sim::Program;

/// Which scan flavour to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKind {
    /// `out[i] = x[0] ⊕ … ⊕ x[i]`.
    Inclusive,
    /// `out[0] = I⊕`, `out[i] = x[0] ⊕ … ⊕ x[i-1]`.
    Exclusive,
}

impl ScanKind {
    /// Cache-key fragment.
    pub fn name(self) -> &'static str {
        match self {
            ScanKind::Inclusive => "inc",
            ScanKind::Exclusive => "exc",
        }
    }
}

/// In-place scan over a device vector.
///
/// Args: `a0` = n, `a1` = ptr (input and output).
pub fn build_scan(cfg: &EnvConfig, sew: Sew, op: ScanOp, kind: ScanKind) -> ScanResult<Program> {
    let t_ident = XReg::new(15); // a5: identity constant
    let mut k = kb(cfg, &format!("scan_{}_{}", op.name(), kind.name()), sew);
    let vs = k.declare_kinds(&[
        ("x", rvv_asm::ValueKind::Normal),
        ("y", rvv_asm::ValueKind::Temp),
        ("ident", rvv_asm::ValueKind::Remat(t_ident)),
    ]);
    let vop = op.valu();
    let identity = op.identity(sew) as i64;
    // Scratch scalar for the "next carry" in the exclusive variant.
    let t_next = XReg::new(16); // a6: unused argument slot
    k.prologue();
    k.b.mark("setup");

    let done = k.b.label();
    k.b.li(T_CARRY, identity);
    k.b.beqz(XReg::arg(0), done);

    // Broadcast the identity once (paper: vsetvlmax + vmv.v.x).
    k.b.vsetvli(T_TMP, XReg::ZERO, vtype_of(cfg, sew));
    k.b.li(t_ident, identity);
    k.init_remat(vs[2]);

    let head = k.b.label();
    k.b.mark("strip_load");
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rx = k.vout(vs[0]);
    k.b.vle(sew, rx, XReg::arg(1));
    k.vflush(vs[0], rx);

    // In-register scan ladder: for (off = 1; off < vl; off <<= 1).
    k.b.mark("ladder");
    let inner_done = k.b.label();
    k.b.li(T_OFF, 1);
    k.b.bgeu(T_OFF, T_VL, inner_done);
    let inner = k.b.label();
    k.b.bind(inner);
    {
        let ry = k.vout(vs[1]);
        k.vfill(ry, vs[2]);
        let rx = k.vin(vs[0]);
        k.b.vslideup_vx(ry, rx, T_OFF, true);
        let ry = k.vin(vs[1]);
        k.b.vop_vv(vop, rx, rx, ry, true);
        k.vflush(vs[0], rx);
    }
    k.b.slli(T_OFF, T_OFF, 1);
    k.b.bltu(T_OFF, T_VL, inner);
    k.b.bind(inner_done);
    k.b.mark("carry_store");

    // Fold in the carry from previous strips.
    {
        let rx = k.vin(vs[0]);
        k.b.vop_vx(vop, rx, rx, T_CARRY, true);
        k.vflush(vs[0], rx);
    }

    match kind {
        ScanKind::Inclusive => {
            // Store, then carry = x[vl-1] (still in the register).
            let rx = k.vin(vs[0]);
            k.b.vse(sew, rx, XReg::arg(1));
            k.b.addi(T_TMP, T_VL, -1);
            let ry = k.vout(vs[1]);
            k.b.vslidedown_vx(ry, rx, T_TMP, true);
            k.b.vmv_xs(T_CARRY, ry);
        }
        ScanKind::Exclusive => {
            // next_carry = x[vl-1]; out = slide1up(x, carry); carry = next.
            let rx = k.vin(vs[0]);
            k.b.addi(T_TMP, T_VL, -1);
            let ry = k.vout(vs[1]);
            k.b.vslidedown_vx(ry, rx, T_TMP, true);
            k.b.vmv_xs(t_next, ry);
            let ry = k.vout(vs[1]);
            let rx = k.vin(vs[0]);
            k.b.raw(rvv_isa::Instr::VSlide1Up {
                vd: ry,
                vs2: rx,
                rs1: T_CARRY,
                vm: true,
            });
            k.b.vse(sew, ry, XReg::arg(1));
            k.b.mv(T_CARRY, t_next);
        }
    }

    k.b.mark("advance");
    advance_and_loop(&mut k.b, sew, &[XReg::arg(1)], XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use crate::session::{EnvConfig, ScanEnv};
    use rvv_asm::SpillProfile;
    use rvv_isa::Lmul;

    fn env(vlen: u32, lmul: Lmul) -> ScanEnv {
        ScanEnv::new(EnvConfig {
            vlen,
            lmul,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 16 << 20,
        })
    }

    #[test]
    fn plus_scan_matches_oracle_across_configs() {
        let data: Vec<u32> = (0..301)
            .map(|i| (i * 2654435761u64 % 1000) as u32)
            .collect();
        for vlen in [128, 256, 1024] {
            for lmul in [Lmul::F4, Lmul::F2, Lmul::M1, Lmul::M2, Lmul::M8] {
                let mut e = env(vlen, lmul);
                let v = e.from_u32(&data).unwrap();
                let p =
                    build_scan(&e.config(), Sew::E32, ScanOp::Plus, ScanKind::Inclusive).unwrap();
                e.run_program(&p, &[data.len() as u64, v.addr()]).unwrap();
                let want = native::u32v::scan_inclusive(ScanOp::Plus, &data);
                assert_eq!(e.to_u32(&v), want, "vlen={vlen} lmul={lmul:?}");
            }
        }
    }

    #[test]
    fn exclusive_scan_matches_oracle() {
        let data: Vec<u32> = (1..=100).collect();
        let mut e = env(256, Lmul::M1);
        let v = e.from_u32(&data).unwrap();
        let p = build_scan(&e.config(), Sew::E32, ScanOp::Plus, ScanKind::Exclusive).unwrap();
        e.run_program(&p, &[data.len() as u64, v.addr()]).unwrap();
        assert_eq!(
            e.to_u32(&v),
            native::u32v::scan_exclusive(ScanOp::Plus, &data)
        );
    }

    #[test]
    fn all_ops_all_kinds() {
        let data: Vec<u32> = (0..97).map(|i| (i * 37 + 5) % 256).collect();
        for &op in &ScanOp::ALL {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                let mut e = env(256, Lmul::M2);
                let v = e.from_u32(&data).unwrap();
                let p = build_scan(&e.config(), Sew::E32, op, kind).unwrap();
                e.run_program(&p, &[data.len() as u64, v.addr()]).unwrap();
                let want = match kind {
                    ScanKind::Inclusive => native::u32v::scan_inclusive(op, &data),
                    ScanKind::Exclusive => native::u32v::scan_exclusive(op, &data),
                };
                assert_eq!(e.to_u32(&v), want, "{op} {kind:?}");
            }
        }
    }

    #[test]
    fn empty_and_single_element() {
        let mut e = env(128, Lmul::M1);
        let v = e.from_u32(&[]).unwrap();
        let p = build_scan(&e.config(), Sew::E32, ScanOp::Plus, ScanKind::Inclusive).unwrap();
        e.run_program(&p, &[0, v.addr()]).unwrap();
        let v1 = e.from_u32(&[42]).unwrap();
        e.run_program(&p, &[1, v1.addr()]).unwrap();
        assert_eq!(e.to_u32(&v1), vec![42]);
    }

    #[test]
    fn e64_and_e8_scans() {
        let mut e = env(256, Lmul::M1);
        let data64: Vec<u64> = vec![u64::MAX - 5, 3, 9, 1, 2, 8];
        let v = e.from_u64(&data64).unwrap();
        let p = build_scan(&e.config(), Sew::E64, ScanOp::Plus, ScanKind::Inclusive).unwrap();
        e.run_program(&p, &[data64.len() as u64, v.addr()]).unwrap();
        assert_eq!(
            e.to_elems(&v),
            native::scan_inclusive(ScanOp::Plus, Sew::E64, &data64)
        );

        let data8: Vec<u64> = (0..50).map(|i| i * 7 % 256).collect();
        let v8 = e.from_elems(Sew::E8, &data8).unwrap();
        let p8 = build_scan(&e.config(), Sew::E8, ScanOp::Plus, ScanKind::Inclusive).unwrap();
        e.run_program(&p8, &[data8.len() as u64, v8.addr()])
            .unwrap();
        assert_eq!(
            e.to_elems(&v8),
            native::scan_inclusive(ScanOp::Plus, Sew::E8, &data8)
        );
    }

    #[test]
    fn no_spills_at_any_lmul() {
        // The unsegmented scan uses 3 vector values; even LMUL=8's 3 groups
        // hold them. This is why the paper's scan shows near-ideal LMUL
        // scaling (abstract: 2.85x -> 21.93x) while the segmented scan
        // does not.
        for lmul in Lmul::ALL {
            let cfg = EnvConfig {
                lmul,
                ..EnvConfig::paper_default()
            };
            let mut k = super::super::kb(&cfg, "probe", Sew::E32);
            k.declare(&["x", "y", "ident"]);
            assert!(!k.spills(), "scan must not spill at {lmul}");
        }
    }
}
