//! Sequential scalar baselines — the paper's comparison targets.
//!
//! The paper's baselines are "pure C code without RVV intrinsics" compiled
//! to scalar RISC-V. These generators emit the loops such a compiler
//! produces: one element per iteration, no vector instructions at all. They
//! run on the same simulated machine with the same counter, making the
//! speedup an apples-to-apples dynamic-instruction ratio (Tables 2–4).
//!
//! Per-element instruction budgets (e32): `p_add` 6, `scan` 6, `seg_scan`
//! 9–10 — matching the paper's observed `6N + c` / `11N + c` asymptotics.

use super::{T_CARRY, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::ops::ScanOp;
use crate::session::EnvConfig;
use rvv_asm::ProgramBuilder;
use rvv_isa::{AluOp, MemWidth, Sew, XReg};
use rvv_sim::Program;

fn mem_width(sew: Sew) -> MemWidth {
    match sew {
        Sew::E8 => MemWidth::B,
        Sew::E16 => MemWidth::H,
        Sew::E32 => MemWidth::W,
        Sew::E64 => MemWidth::D,
    }
}

/// Emit `dst = acc ⊕ src` for a scalar op. Plus and the bitwise ops are one
/// instruction; unsigned min/max need a compare-and-branch pair (base RV64I
/// has no min/max, exactly like the compilers the paper baselines against).
fn scalar_combine(b: &mut ProgramBuilder, op: ScanOp, acc: XReg, src: XReg) {
    match op {
        ScanOp::Plus => {
            b.add(acc, acc, src);
        }
        ScanOp::And => {
            b.op(AluOp::And, acc, acc, src);
        }
        ScanOp::Or => {
            b.op(AluOp::Or, acc, acc, src);
        }
        ScanOp::Xor => {
            b.op(AluOp::Xor, acc, acc, src);
        }
        ScanOp::Max => {
            let keep = b.label();
            b.bgeu(acc, src, keep);
            b.mv(acc, src);
            b.bind(keep);
        }
        ScanOp::Min => {
            let keep = b.label();
            b.bgeu(src, acc, keep);
            b.mv(acc, src);
            b.bind(keep);
        }
    }
}

/// Scalar `a[i] ⊕= x`: the paper's `p_add_baseline`.
///
/// Args: `a0` = n, `a1` = ptr, `a2` = scalar.
pub fn build_elem_baseline(_cfg: &EnvConfig, sew: Sew, op: ScanOp) -> ScanResult<Program> {
    let mut b = ProgramBuilder::new(format!("elem_baseline_{}", op.name()));
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let done = b.label();
    b.beqz(XReg::arg(0), done);
    let head = b.label();
    b.bind(head);
    b.load(w, false, T_VL, XReg::arg(1), 0);
    scalar_combine(&mut b, op, T_VL, XReg::arg(2));
    b.store(w, T_VL, XReg::arg(1), 0);
    b.addi(XReg::arg(1), XReg::arg(1), esz);
    b.addi(XReg::arg(0), XReg::arg(0), -1);
    b.bnez(XReg::arg(0), head);
    b.bind(done);
    b.halt();
    Ok(b.finish()?)
}

/// Scalar inclusive scan: the paper's `plus_scan_baseline`.
///
/// Args: `a0` = n, `a1` = ptr (in/out).
pub fn build_scan_baseline(_cfg: &EnvConfig, sew: Sew, op: ScanOp) -> ScanResult<Program> {
    let mut b = ProgramBuilder::new(format!("scan_baseline_{}", op.name()));
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let done = b.label();
    b.li(T_CARRY, op.identity(sew) as i64);
    b.beqz(XReg::arg(0), done);
    let head = b.label();
    b.bind(head);
    b.load(w, false, T_VL, XReg::arg(1), 0);
    scalar_combine(&mut b, op, T_CARRY, T_VL);
    b.store(w, T_CARRY, XReg::arg(1), 0);
    b.addi(XReg::arg(1), XReg::arg(1), esz);
    b.addi(XReg::arg(0), XReg::arg(0), -1);
    b.bnez(XReg::arg(0), head);
    b.bind(done);
    b.halt();
    Ok(b.finish()?)
}

/// Scalar segmented inclusive scan: the paper's `seg_plus_scan_baseline`.
///
/// Args: `a0` = n, `a1` = data ptr (in/out), `a2` = head-flags ptr.
pub fn build_seg_scan_baseline(_cfg: &EnvConfig, sew: Sew, op: ScanOp) -> ScanResult<Program> {
    let mut b = ProgramBuilder::new(format!("seg_scan_baseline_{}", op.name()));
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let done = b.label();
    b.li(T_CARRY, op.identity(sew) as i64);
    b.beqz(XReg::arg(0), done);
    let head = b.label();
    b.bind(head);
    let no_reset = b.label();
    b.load(w, false, T_TMP, XReg::arg(2), 0);
    b.beqz(T_TMP, no_reset);
    b.li(T_CARRY, op.identity(sew) as i64);
    b.bind(no_reset);
    b.load(w, false, T_VL, XReg::arg(1), 0);
    scalar_combine(&mut b, op, T_CARRY, T_VL);
    b.store(w, T_CARRY, XReg::arg(1), 0);
    b.addi(XReg::arg(1), XReg::arg(1), esz);
    b.addi(XReg::arg(2), XReg::arg(2), esz);
    b.addi(XReg::arg(0), XReg::arg(0), -1);
    b.bnez(XReg::arg(0), head);
    b.bind(done);
    b.halt();
    Ok(b.finish()?)
}

/// Scalar `enumerate` baseline.
///
/// Args: `a0` = n, `a1` = flags, `a2` = dst, `a3` = set_bit. Count in `a0`.
pub fn build_enumerate_baseline(_cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut b = ProgramBuilder::new("enumerate_baseline");
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let done = b.label();
    b.li(T_CARRY, 0);
    b.beqz(XReg::arg(0), done);
    let head = b.label();
    b.bind(head);
    let no_match = b.label();
    b.store(w, T_CARRY, XReg::arg(2), 0);
    b.load(w, false, T_TMP, XReg::arg(1), 0);
    b.bne(T_TMP, XReg::arg(3), no_match);
    b.addi(T_CARRY, T_CARRY, 1);
    b.bind(no_match);
    b.addi(XReg::arg(1), XReg::arg(1), esz);
    b.addi(XReg::arg(2), XReg::arg(2), esz);
    b.addi(XReg::arg(0), XReg::arg(0), -1);
    b.bnez(XReg::arg(0), head);
    b.bind(done);
    b.mv(XReg::arg(0), T_CARRY);
    b.halt();
    Ok(b.finish()?)
}

/// Scalar select baseline: `dst[i] = flags[i] ? a[i] : b[i]`.
///
/// Args: `a0` = n, `a1` = flags, `a2` = a, `a3` = b, `a4` = dst.
pub fn build_select_baseline(_cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut b = ProgramBuilder::new("select_baseline");
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let done = b.label();
    b.beqz(XReg::arg(0), done);
    let head = b.label();
    b.bind(head);
    let take_b = b.label();
    let store = b.label();
    b.load(w, false, T_TMP, XReg::arg(1), 0);
    b.beqz(T_TMP, take_b);
    b.load(w, false, T_VL, XReg::arg(2), 0);
    b.jump(store);
    b.bind(take_b);
    b.load(w, false, T_VL, XReg::arg(3), 0);
    b.bind(store);
    b.store(w, T_VL, XReg::arg(4), 0);
    for a in [XReg::arg(1), XReg::arg(2), XReg::arg(3), XReg::arg(4)] {
        b.addi(a, a, esz);
    }
    b.addi(XReg::arg(0), XReg::arg(0), -1);
    b.bnez(XReg::arg(0), head);
    b.bind(done);
    b.halt();
    Ok(b.finish()?)
}

/// Scalar permutation baseline: `dst[index[i]] = src[i]`.
///
/// Args: `a0` = n, `a1` = src, `a2` = dst, `a3` = index.
pub fn build_permute_baseline(_cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut b = ProgramBuilder::new("permute_baseline");
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let log2 = sew.bytes().trailing_zeros() as i32;
    let done = b.label();
    b.beqz(XReg::arg(0), done);
    let head = b.label();
    b.bind(head);
    b.load(w, false, T_VL, XReg::arg(1), 0);
    b.load(w, false, T_TMP, XReg::arg(3), 0);
    b.slli(T_TMP, T_TMP, log2);
    b.add(T_TMP, T_TMP, XReg::arg(2));
    b.store(w, T_VL, T_TMP, 0);
    b.addi(XReg::arg(1), XReg::arg(1), esz);
    b.addi(XReg::arg(3), XReg::arg(3), esz);
    b.addi(XReg::arg(0), XReg::arg(0), -1);
    b.bnez(XReg::arg(0), head);
    b.bind(done);
    b.halt();
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use crate::session::ScanEnv;
    use rvv_isa::InstrClass;

    #[test]
    fn baselines_are_purely_scalar() {
        let cfg = crate::session::EnvConfig::paper_default();
        for p in [
            build_elem_baseline(&cfg, Sew::E32, ScanOp::Plus).unwrap(),
            build_scan_baseline(&cfg, Sew::E32, ScanOp::Plus).unwrap(),
            build_seg_scan_baseline(&cfg, Sew::E32, ScanOp::Plus).unwrap(),
            build_enumerate_baseline(&cfg, Sew::E32).unwrap(),
            build_select_baseline(&cfg, Sew::E32).unwrap(),
            build_permute_baseline(&cfg, Sew::E32).unwrap(),
        ] {
            assert!(
                p.instrs.iter().all(|i| !i.is_vector()),
                "{} contains vector instructions",
                p.name
            );
        }
    }

    #[test]
    fn baseline_scan_matches_oracle_and_costs_6n() {
        let data: Vec<u32> = (0..500).map(|i| i * 3 + 1).collect();
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        let p = build_scan_baseline(&e.config(), Sew::E32, ScanOp::Plus).unwrap();
        let (report, _) = e.run_program(&p, &[data.len() as u64, v.addr()]).unwrap();
        assert_eq!(
            e.to_u32(&v),
            native::u32v::scan_inclusive(ScanOp::Plus, &data)
        );
        // 6 per element + small constant, like the paper's 6N + 26.
        assert_eq!(report.retired, 6 * 500 + 3);
        assert_eq!(e.machine().counters.vector_total(), 0);
    }

    #[test]
    fn baseline_elem_costs_6n() {
        let data = vec![1u32; 1000];
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        let p = build_elem_baseline(&e.config(), Sew::E32, ScanOp::Plus).unwrap();
        let (report, _) = e.run_program(&p, &[1000, v.addr(), 5]).unwrap();
        assert_eq!(report.retired, 6 * 1000 + 2);
        assert_eq!(e.to_u32(&v), vec![6u32; 1000]);
    }

    #[test]
    fn baseline_seg_scan_matches_oracle() {
        let n = 233;
        let data: Vec<u32> = (0..n).map(|i| (i % 19) as u32).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 7 == 0)).collect();
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        let f = e.from_u32(&flags).unwrap();
        let p = build_seg_scan_baseline(&e.config(), Sew::E32, ScanOp::Plus).unwrap();
        let (report, _) = e.run_program(&p, &[n as u64, v.addr(), f.addr()]).unwrap();
        assert_eq!(
            e.to_u32(&v),
            native::u32v::seg_scan_inclusive(ScanOp::Plus, &data, &flags)
        );
        // 9 per element + 1 per segment head + constant.
        let heads = flags.iter().filter(|&&f| f == 1).count() as u64;
        assert_eq!(report.retired, 9 * n as u64 + heads + 3);
    }

    #[test]
    fn baseline_max_scan_uses_branches() {
        let data: Vec<u32> = vec![3, 9, 1, 12, 5];
        let mut e = ScanEnv::paper_default();
        let v = e.from_u32(&data).unwrap();
        let p = build_scan_baseline(&e.config(), Sew::E32, ScanOp::Max).unwrap();
        e.run_program(&p, &[5, v.addr()]).unwrap();
        assert_eq!(e.to_u32(&v), vec![3, 9, 9, 12, 12]);
        assert!(e.machine().counters.class(InstrClass::ScalarCtrl) > 6);
    }

    #[test]
    fn baseline_enumerate_select_permute() {
        let mut e = ScanEnv::paper_default();
        let flags = [1u32, 0, 1, 1, 0];
        let f = e.from_u32(&flags).unwrap();
        let d = e.alloc(Sew::E32, 5).unwrap();
        let p = build_enumerate_baseline(&e.config(), Sew::E32).unwrap();
        let (_, count) = e.run_program(&p, &[5, f.addr(), d.addr(), 1]).unwrap();
        assert_eq!(count, 3);
        assert_eq!(e.to_u32(&d), vec![0, 1, 1, 2, 3]);

        let a = e.from_u32(&[10, 11, 12, 13, 14]).unwrap();
        let bb = e.from_u32(&[20, 21, 22, 23, 24]).unwrap();
        let out = e.alloc(Sew::E32, 5).unwrap();
        let p = build_select_baseline(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[5, f.addr(), a.addr(), bb.addr(), out.addr()])
            .unwrap();
        assert_eq!(e.to_u32(&out), vec![10, 21, 12, 13, 24]);

        let idx = e.from_u32(&[4, 3, 2, 1, 0]).unwrap();
        let p = build_permute_baseline(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[5, a.addr(), out.addr(), idx.addr()])
            .unwrap();
        assert_eq!(e.to_u32(&out), vec![14, 13, 12, 11, 10]);
    }
}
