//! Kernel generators: the strip-mined RVV programs behind each primitive.
//!
//! Every generator mirrors the structure of the paper's C-with-intrinsics
//! listings — an outer strip-mining loop driven by `vsetvli`, vector body,
//! pointer advance — and is built per `(VLEN, SEW, LMUL, spill profile)`
//! through [`rvv_asm::KernelBuilder`], so LMUL register pressure and spill
//! code arise exactly as they do in the paper's compiler-generated code.
//!
//! ## Scalar register conventions (within kernels)
//!
//! | register | role |
//! |---|---|
//! | `a0..a7` | arguments (element count, pointers, broadcast scalars) |
//! | `t0` (x5) | current `vl` |
//! | `t1` (x6) | in-register scan offset |
//! | `t2` (x7) | carry / running count |
//! | `t3` (x28) | byte-advance and misc temporary |
//! | `x8`, `x29..x31` | reserved by the spill machinery |

mod baseline;
mod data_move;
mod elementwise;
mod enumerate;
mod reduce;
mod scan;
mod segscan;
mod vls;

pub use baseline::*;
pub use data_move::*;
pub use elementwise::*;
pub use enumerate::*;
pub use reduce::*;
pub use scan::*;
pub use segscan::*;
pub use vls::*;

use crate::session::EnvConfig;
use rvv_asm::{KernelBuilder, ProgramBuilder};
use rvv_isa::{Sew, VType, XReg};

/// `vl` register.
pub(crate) const T_VL: XReg = XReg::new(5);
/// Inner-loop offset register.
pub(crate) const T_OFF: XReg = XReg::new(6);
/// Carry / count register.
pub(crate) const T_CARRY: XReg = XReg::new(7);
/// Scratch temporary.
pub(crate) const T_TMP: XReg = XReg::new(28);

pub(crate) fn vtype_of(cfg: &EnvConfig, sew: Sew) -> VType {
    VType::new(sew, cfg.lmul)
}

pub(crate) fn kb(cfg: &EnvConfig, name: &str, sew: Sew) -> KernelBuilder {
    let _ = sew;
    KernelBuilder::new(name, cfg.lmul, cfg.vlen / 8, cfg.spill_profile)
}

/// Emit `ptr += vl * esize` for each pointer register, then `n -= vl` and
/// loop while `n != 0`.
pub(crate) fn advance_and_loop(
    b: &mut ProgramBuilder,
    sew: Sew,
    ptrs: &[XReg],
    n: XReg,
    loop_head: rvv_asm::Label,
) {
    let log2 = sew.bytes().trailing_zeros() as i32;
    b.slli(T_TMP, T_VL, log2);
    for &p in ptrs {
        b.add(p, p, T_TMP);
    }
    b.sub(n, n, T_VL);
    b.bnez(n, loop_head);
}
