//! Vector-length-specific (VLS) strip-mining — the counterfactual the
//! paper's §3.1 argues against.
//!
//! A VLS SIMD ISA (AVX/Neon-style) processes a fixed number of elements
//! per vector instruction and needs a **scalar remainder loop** for the
//! elements the last full vector cannot cover. RVV's `vsetvli` folds the
//! remainder into the final strip. This kernel emulates the VLS structure
//! on our machine — one `vsetvli` to pin `vl = VLMAX`, a main loop over
//! whole vectors, then a scalar loop for `n mod VLMAX` — so the
//! `ablation_vla_vls` bench can measure exactly what the VLA design saves:
//! nothing per full strip (VLS even skips the per-strip `vsetvli`), but up
//! to `6·(VLMAX−1)` scalar instructions in the tail, which dominates for
//! short vectors.

use super::{kb, vtype_of, T_OFF, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::session::EnvConfig;
use rvv_isa::{MemWidth, Sew, VAluOp, XReg};
use rvv_sim::Program;

fn mem_width(sew: Sew) -> MemWidth {
    match sew {
        Sew::E8 => MemWidth::B,
        Sew::E16 => MemWidth::H,
        Sew::E32 => MemWidth::W,
        Sew::E64 => MemWidth::D,
    }
}

/// `a ⊕= x` with VLS-style strip-mining: full-VLMAX vector strips plus a
/// scalar remainder loop. Same signature as
/// [`super::build_elem_vx`]: `a0` = n, `a1` = ptr, `a2` = scalar.
pub fn build_elem_vx_vls(cfg: &EnvConfig, sew: Sew, op: VAluOp) -> ScanResult<Program> {
    let vlmax = vtype_of(cfg, sew).vlmax(cfg.vlen) as i64;
    let w = mem_width(sew);
    let esz = sew.bytes() as i32;
    let log2 = sew.bytes().trailing_zeros() as i32;
    let mut k = kb(cfg, &format!("elem_vx_vls_{op:?}"), sew);
    let vs = k.declare(&["v"]);
    k.prologue();
    let remainder = k.b.label();
    let done = k.b.label();
    // Configure once for exactly VLMAX elements (the fixed vector width).
    k.b.li(T_VL, vlmax);
    k.b.vsetvli(XReg::ZERO, T_VL, vtype_of(cfg, sew));
    k.b.bltu(XReg::arg(0), T_VL, remainder);
    let main = k.b.label();
    k.b.bind(main);
    let rv = k.vout(vs[0]);
    k.b.vle(sew, rv, XReg::arg(1));
    k.b.vop_vx(op, rv, rv, XReg::arg(2), true);
    k.b.vse(sew, rv, XReg::arg(1));
    k.vflush(vs[0], rv);
    k.b.slli(T_TMP, T_VL, log2);
    k.b.add(XReg::arg(1), XReg::arg(1), T_TMP);
    k.b.sub(XReg::arg(0), XReg::arg(0), T_VL);
    k.b.bgeu(XReg::arg(0), T_VL, main);
    // Scalar remainder loop: the code VLA's last-strip `vsetvli` deletes.
    k.b.bind(remainder);
    k.b.beqz(XReg::arg(0), done);
    let rloop = k.b.label();
    k.b.bind(rloop);
    k.b.load(w, false, T_OFF, XReg::arg(1), 0);
    // Scalar equivalent of the vector op (Add only needs `add`; the
    // ablation uses p_add, matching the paper's Listing 1/2 example).
    match op {
        VAluOp::Add => {
            k.b.add(T_OFF, T_OFF, XReg::arg(2));
        }
        VAluOp::And => {
            k.b.op(rvv_isa::AluOp::And, T_OFF, T_OFF, XReg::arg(2));
        }
        VAluOp::Or => {
            k.b.op(rvv_isa::AluOp::Or, T_OFF, T_OFF, XReg::arg(2));
        }
        VAluOp::Xor => {
            k.b.op(rvv_isa::AluOp::Xor, T_OFF, T_OFF, XReg::arg(2));
        }
        _ => panic!("VLS remainder emulation supports add/and/or/xor"),
    }
    k.b.store(w, T_OFF, XReg::arg(1), 0);
    k.b.addi(XReg::arg(1), XReg::arg(1), esz);
    k.b.addi(XReg::arg(0), XReg::arg(0), -1);
    k.b.bnez(XReg::arg(0), rloop);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;
    use crate::session::{EnvConfig, ScanEnv};

    fn env() -> ScanEnv {
        ScanEnv::new(EnvConfig {
            vlen: 256, // VLMAX = 8 at e32
            lmul: rvv_isa::Lmul::M1,
            spill_profile: rvv_asm::SpillProfile::llvm14(),
            mem_bytes: 8 << 20,
        })
    }

    #[test]
    fn vls_matches_vla_result_for_every_remainder() {
        for n in 0..=25usize {
            let data: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
            let mut e = env();
            let v = e.from_u32(&data).unwrap();
            let p = build_elem_vx_vls(&e.config(), Sew::E32, VAluOp::Add).unwrap();
            e.run_program(&p, &[n as u64, v.addr(), 7]).unwrap();
            let want: Vec<u32> = data.iter().map(|&x| x + 7).collect();
            assert_eq!(e.to_u32(&v), want, "n={n}");
        }
    }

    #[test]
    fn vls_pays_for_the_remainder() {
        // n = VLMAX + (VLMAX-1): VLA covers the tail with one more strip;
        // VLS runs VLMAX-1 scalar iterations.
        let n = 8 + 7;
        let data: Vec<u32> = (0..n as u32).collect();
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        let vla = primitives::p_add(&mut e, &v, 1).unwrap();
        let p = build_elem_vx_vls(&e.config(), Sew::E32, VAluOp::Add).unwrap();
        let (r, _) = e.run_program(&p, &[n as u64, v.addr(), 1]).unwrap();
        assert!(r.retired > vla, "VLS {} must exceed VLA {}", r.retired, vla);
    }

    #[test]
    fn vls_wins_nothing_on_exact_multiples() {
        // With no remainder, VLS even saves the per-strip vsetvli.
        let n = 64; // 8 full strips
        let data: Vec<u32> = (0..n as u32).collect();
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        let vla = primitives::p_add(&mut e, &v, 1).unwrap();
        let p = build_elem_vx_vls(&e.config(), Sew::E32, VAluOp::Add).unwrap();
        let (r, _) = e.run_program(&p, &[n as u64, v.addr(), 1]).unwrap();
        assert!(r.retired <= vla);
    }
}
