//! Data-movement and comparison kernels rounding out the primitive set:
//! `copy`, `reverse`, `gather` (indexed load — the inverse of the paper's
//! `permute`), `iota`, and elementwise compare-to-flags. All are standard
//! scan-vector-model primitives (Blelloch lists reverse/index among the
//! basic vector operations) and are used by the algorithm layer
//! (segmented quicksort, sparse matvec, line-of-sight).

use super::{advance_and_loop, kb, vtype_of, T_CARRY, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::session::EnvConfig;
use rvv_isa::{Instr, Sew, VAluOp, VCmp, VReg, XReg};
use rvv_sim::Program;

/// `dst[i] = src[i]`.
///
/// Args: `a0` = n, `a1` = src, `a2` = dst.
pub fn build_copy(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "copy", sew);
    let vs = k.declare(&["v"]);
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.vle(sew, rv, XReg::arg(1));
    k.b.vse(sew, rv, XReg::arg(2));
    k.vflush(vs[0], rv);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// `dst[i] = src[n-1-i]` via a negative-stride store.
///
/// Args: `a0` = n, `a1` = src, `a2` = dst.
pub fn build_reverse(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "reverse", sew);
    let vs = k.declare(&["v"]);
    let esz = sew.bytes() as i64;
    let t_stride = XReg::new(16); // a6
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    // dst cursor starts at the last element: dst + (n-1)*esz.
    k.b.addi(T_TMP, XReg::arg(0), -1);
    k.b.slli(T_TMP, T_TMP, sew.bytes().trailing_zeros() as i32);
    k.b.add(XReg::arg(2), XReg::arg(2), T_TMP);
    k.b.li(t_stride, -esz);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.vle(sew, rv, XReg::arg(1));
    k.b.raw(Instr::VStoreStrided {
        eew: sew,
        vs3: rv,
        rs1: XReg::arg(2),
        rs2: t_stride,
        vm: true,
    });
    k.vflush(vs[0], rv);
    // src advances forward, dst cursor retreats.
    k.b.slli(T_TMP, T_VL, sew.bytes().trailing_zeros() as i32);
    k.b.add(XReg::arg(1), XReg::arg(1), T_TMP);
    k.b.sub(XReg::arg(2), XReg::arg(2), T_TMP);
    k.b.sub(XReg::arg(0), XReg::arg(0), T_VL);
    k.b.bnez(XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Gather (`dst[i] = table[index[i]]`) via indexed load — the read-side
/// counterpart of the paper's `permute`.
///
/// Args: `a0` = n, `a1` = table base, `a2` = dst, `a3` = index (element
/// indices; the kernel scales to byte offsets).
pub fn build_gather(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "gather", sew);
    let vs = k.declare(&["vi", "vx"]);
    let log2 = sew.bytes().trailing_zeros() as i8;
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let ri = k.vout(vs[0]);
    k.b.vle(sew, ri, XReg::arg(3));
    k.b.vop_vi(VAluOp::Sll, ri, ri, log2, true);
    k.vflush(vs[0], ri);
    let rx = k.vout(vs[1]);
    let ri = k.vin(vs[0]);
    k.b.raw(Instr::VLoadIndexed {
        eew: sew,
        ordered: false,
        vd: rx,
        rs1: XReg::arg(1),
        vs2: ri,
        vm: true,
    });
    k.b.vse(sew, rx, XReg::arg(2));
    k.vflush(vs[1], rx);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(2), XReg::arg(3)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// `dst[i] = i` (the model's `index` primitive) via `vid.v` plus a running
/// base.
///
/// Args: `a0` = n, `a1` = dst.
pub fn build_iota(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "iota", sew);
    let vs = k.declare(&["v"]);
    k.prologue();
    let done = k.b.label();
    k.b.li(T_CARRY, 0);
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.vid(rv);
    k.b.vop_vx(VAluOp::Add, rv, rv, T_CARRY, true);
    k.b.vse(sew, rv, XReg::arg(1));
    k.vflush(vs[0], rv);
    k.b.add(T_CARRY, T_CARRY, T_VL);
    advance_and_loop(&mut k.b, sew, &[XReg::arg(1)], XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Elementwise compare producing 0/1 flags: `dst[i] = (a[i] ⋈ b[i]) ? 1 : 0`.
///
/// Args: `a0` = n, `a1` = a, `a2` = b, `a3` = dst.
pub fn build_cmp_flags(cfg: &EnvConfig, sew: Sew, cond: VCmp) -> ScanResult<Program> {
    let mut k = kb(cfg, &format!("cmp_flags_{cond:?}"), sew);
    let vs = k.declare(&["va", "vb"]);
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let ra = k.vout(vs[0]);
    k.b.vle(sew, ra, XReg::arg(1));
    k.vflush(vs[0], ra);
    let rb = k.vout(vs[1]);
    k.b.vle(sew, rb, XReg::arg(2));
    let ra = k.vin(vs[0]);
    // v0 = a ⋈ b; dst = merge(0, 1, v0). Gtu/Gt have no .vv encoding, so
    // normalize to Ltu/Lt with swapped operands (a > b ⇔ b < a).
    let (cond, vs2, vs1) = match cond {
        VCmp::Gtu => (VCmp::Ltu, rb, ra),
        VCmp::Gt => (VCmp::Lt, rb, ra),
        c => (c, ra, rb),
    };
    k.b.raw(Instr::VCmpVV {
        cond,
        vd: VReg::V0,
        vs2,
        vs1,
        vm: true,
    });
    k.b.vmv_vi(ra, 0);
    k.b.raw(Instr::VMergeVIM {
        vd: ra,
        vs2: ra,
        imm: 1,
    });
    k.b.vse(sew, ra, XReg::arg(3));
    k.vflush(vs[0], ra);
    k.vflush(vs[1], rb);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2), XReg::arg(3)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Deinterleave: `dst[i] = src[2i + phase]` for `phase ∈ {0,1}` —
/// Blelloch's `even-elts`/`odd-elts`, via a strided load.
///
/// Args: `a0` = output count, `a1` = src base (already offset for the
/// phase by the host wrapper), `a2` = dst.
pub fn build_deinterleave(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "deinterleave", sew);
    let vs = k.declare(&["v"]);
    let t_stride = XReg::new(16); // a6
    let esz = sew.bytes() as i64;
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    k.b.li(t_stride, 2 * esz);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.raw(Instr::VLoadStrided {
        eew: sew,
        vd: rv,
        rs1: XReg::arg(1),
        rs2: t_stride,
        vm: true,
    });
    k.b.vse(sew, rv, XReg::arg(2));
    k.vflush(vs[0], rv);
    // src advances 2·vl elements; dst advances vl.
    k.b.slli(T_TMP, T_VL, sew.bytes().trailing_zeros() as i32 + 1);
    k.b.add(XReg::arg(1), XReg::arg(1), T_TMP);
    k.b.slli(T_TMP, T_VL, sew.bytes().trailing_zeros() as i32);
    k.b.add(XReg::arg(2), XReg::arg(2), T_TMP);
    k.b.sub(XReg::arg(0), XReg::arg(0), T_VL);
    k.b.bnez(XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Interleave one lane: `dst[2i + phase] = src[i]` via a strided store.
/// Calling it for phase 0 with `a` and phase 1 with `b` interleaves two
/// vectors (Blelloch's `interleave`).
///
/// Args: `a0` = input count, `a1` = src, `a2` = dst base (already offset
/// for the phase).
pub fn build_interleave_lane(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "interleave_lane", sew);
    let vs = k.declare(&["v"]);
    let t_stride = XReg::new(16); // a6
    let esz = sew.bytes() as i64;
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    k.b.li(t_stride, 2 * esz);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.vle(sew, rv, XReg::arg(1));
    k.b.raw(Instr::VStoreStrided {
        eew: sew,
        vs3: rv,
        rs1: XReg::arg(2),
        rs2: t_stride,
        vm: true,
    });
    k.vflush(vs[0], rv);
    k.b.slli(T_TMP, T_VL, sew.bytes().trailing_zeros() as i32);
    k.b.add(XReg::arg(1), XReg::arg(1), T_TMP);
    k.b.slli(T_TMP, T_VL, sew.bytes().trailing_zeros() as i32 + 1);
    k.b.add(XReg::arg(2), XReg::arg(2), T_TMP);
    k.b.sub(XReg::arg(0), XReg::arg(0), T_VL);
    k.b.bnez(XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{EnvConfig, ScanEnv};
    use rvv_asm::SpillProfile;
    use rvv_isa::Lmul;

    fn env() -> ScanEnv {
        ScanEnv::new(EnvConfig {
            vlen: 128,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 8 << 20,
        })
    }

    #[test]
    fn copy_and_reverse() {
        let data: Vec<u32> = (0..37).collect();
        let mut e = env();
        let src = e.from_u32(&data).unwrap();
        let dst = e.alloc(Sew::E32, 37).unwrap();
        let p = build_copy(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[37, src.addr(), dst.addr()]).unwrap();
        assert_eq!(e.to_u32(&dst), data);
        let p = build_reverse(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[37, src.addr(), dst.addr()]).unwrap();
        let mut rev = data.clone();
        rev.reverse();
        assert_eq!(e.to_u32(&dst), rev);
    }

    #[test]
    fn reverse_of_reverse_is_identity() {
        let data: Vec<u32> = (0..101).map(|i| i * 7 % 13).collect();
        let mut e = env();
        let a = e.from_u32(&data).unwrap();
        let b = e.alloc(Sew::E32, data.len()).unwrap();
        let c = e.alloc(Sew::E32, data.len()).unwrap();
        let p = build_reverse(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[data.len() as u64, a.addr(), b.addr()])
            .unwrap();
        e.run_program(&p, &[data.len() as u64, b.addr(), c.addr()])
            .unwrap();
        assert_eq!(e.to_u32(&c), data);
    }

    #[test]
    fn gather_indexes_table() {
        let table = [10u32, 20, 30, 40, 50];
        let idx = [4u32, 0, 2, 2, 1, 3];
        let mut e = env();
        let t = e.from_u32(&table).unwrap();
        let i = e.from_u32(&idx).unwrap();
        let d = e.alloc(Sew::E32, idx.len()).unwrap();
        let p = build_gather(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[idx.len() as u64, t.addr(), d.addr(), i.addr()])
            .unwrap();
        assert_eq!(e.to_u32(&d), vec![50, 10, 30, 30, 20, 40]);
    }

    #[test]
    fn iota_spans_strips() {
        let mut e = env();
        let d = e.alloc(Sew::E32, 19).unwrap();
        let p = build_iota(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[19, d.addr()]).unwrap();
        assert_eq!(e.to_u32(&d), (0..19).collect::<Vec<u32>>());
    }

    #[test]
    fn deinterleave_even_odd() {
        let data: Vec<u32> = (0..21).collect();
        let mut e = env();
        let src = e.from_u32(&data).unwrap();
        let even = e.alloc(Sew::E32, 11).unwrap();
        let odd = e.alloc(Sew::E32, 10).unwrap();
        let p = build_deinterleave(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[11, src.addr(), even.addr()]).unwrap();
        e.run_program(&p, &[10, src.addr() + 4, odd.addr()])
            .unwrap();
        assert_eq!(e.to_u32(&even), (0..21).step_by(2).collect::<Vec<u32>>());
        assert_eq!(e.to_u32(&odd), (1..21).step_by(2).collect::<Vec<u32>>());
    }

    #[test]
    fn interleave_two_lanes() {
        let a: Vec<u32> = (0..9).map(|i| i * 10).collect();
        let b: Vec<u32> = (0..9).map(|i| i * 10 + 1).collect();
        let mut e = env();
        let va = e.from_u32(&a).unwrap();
        let vb = e.from_u32(&b).unwrap();
        let dst = e.alloc(Sew::E32, 18).unwrap();
        let p = build_interleave_lane(&e.config(), Sew::E32).unwrap();
        e.run_program(&p, &[9, va.addr(), dst.addr()]).unwrap();
        e.run_program(&p, &[9, vb.addr(), dst.addr() + 4]).unwrap();
        let want: Vec<u32> = (0..18).map(|i| (i / 2) * 10 + i % 2).collect();
        assert_eq!(e.to_u32(&dst), want);
    }

    #[test]
    fn interleave_then_deinterleave_roundtrip() {
        let a: Vec<u32> = (0..50).map(|i| i ^ 0x5a).collect();
        let b: Vec<u32> = (0..50u32).map(|i| i.wrapping_mul(7)).collect();
        let mut e = env();
        let va = e.from_u32(&a).unwrap();
        let vb = e.from_u32(&b).unwrap();
        let dst = e.alloc(Sew::E32, 100).unwrap();
        let il = build_interleave_lane(&e.config(), Sew::E32).unwrap();
        e.run_program(&il, &[50, va.addr(), dst.addr()]).unwrap();
        e.run_program(&il, &[50, vb.addr(), dst.addr() + 4])
            .unwrap();
        let ea = e.alloc(Sew::E32, 50).unwrap();
        let eb = e.alloc(Sew::E32, 50).unwrap();
        let de = build_deinterleave(&e.config(), Sew::E32).unwrap();
        e.run_program(&de, &[50, dst.addr(), ea.addr()]).unwrap();
        e.run_program(&de, &[50, dst.addr() + 4, eb.addr()])
            .unwrap();
        assert_eq!(e.to_u32(&ea), a);
        assert_eq!(e.to_u32(&eb), b);
    }

    #[test]
    fn cmp_flags_all_conditions() {
        let a = [1u32, 5, 3, 3, 0xffff_ffff];
        let b = [2u32, 4, 3, 1, 0];
        let mut e = env();
        let va = e.from_u32(&a).unwrap();
        let vb = e.from_u32(&b).unwrap();
        let d = e.alloc(Sew::E32, a.len()).unwrap();
        for (cond, want) in [
            (VCmp::Ltu, vec![1u32, 0, 0, 0, 0]),
            (VCmp::Eq, vec![0, 0, 1, 0, 0]),
            (VCmp::Ne, vec![1, 1, 0, 1, 1]),
            (VCmp::Gtu, vec![0, 1, 0, 1, 1]),
            (VCmp::Leu, vec![1, 0, 1, 0, 0]),
        ] {
            let p = build_cmp_flags(&e.config(), Sew::E32, cond).unwrap();
            e.run_program(&p, &[a.len() as u64, va.addr(), vb.addr(), d.addr()])
                .unwrap();
            assert_eq!(e.to_u32(&d), want, "{cond:?}");
        }
    }
}
