//! Elementwise kernels: the paper's first primitive class (§4.1).
//!
//! All follow the Listing 4 pattern: strip-mine with `vsetvli`, load,
//! operate, store, advance.

use super::{advance_and_loop, kb, vtype_of, T_VL};
use crate::error::ScanResult;
use crate::session::EnvConfig;
use rvv_isa::{Sew, VAluOp, VCmp, VReg, XReg};
use rvv_sim::Program;

/// `a ⊕= x` (broadcast scalar), in place — the paper's `p-add` shape.
///
/// Args: `a0` = n, `a1` = ptr a, `a2` = scalar x.
pub fn build_elem_vx(cfg: &EnvConfig, sew: Sew, op: VAluOp) -> ScanResult<Program> {
    let mut k = kb(cfg, &format!("elem_vx_{op:?}"), sew);
    let vs = k.declare(&["v"]);
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.vle(sew, rv, XReg::arg(1));
    k.b.vop_vx(op, rv, rv, XReg::arg(2), true);
    k.b.vse(sew, rv, XReg::arg(1));
    k.vflush(vs[0], rv);
    advance_and_loop(&mut k.b, sew, &[XReg::arg(1)], XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// `dst = a ⊕ b`, elementwise over two device vectors.
///
/// Args: `a0` = n, `a1` = a, `a2` = b, `a3` = dst.
pub fn build_elem_vv(cfg: &EnvConfig, sew: Sew, op: VAluOp) -> ScanResult<Program> {
    let mut k = kb(cfg, &format!("elem_vv_{op:?}"), sew);
    let vs = k.declare(&["va", "vb"]);
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let ra = k.vout(vs[0]);
    k.b.vle(sew, ra, XReg::arg(1));
    k.vflush(vs[0], ra);
    let rb = k.vout(vs[1]);
    k.b.vle(sew, rb, XReg::arg(2));
    let ra = k.vin(vs[0]);
    k.b.vop_vv(op, ra, ra, rb, true);
    k.b.vse(sew, ra, XReg::arg(3));
    k.vflush(vs[0], ra);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2), XReg::arg(3)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// `flags[i] = (src[i] >> bit) & 1` — radix sort's `get_flags`.
///
/// Args: `a0` = n, `a1` = src, `a2` = dst flags, `a3` = bit.
pub fn build_get_flags(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "get_flags", sew);
    let vs = k.declare(&["v"]);
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rv = k.vout(vs[0]);
    k.b.vle(sew, rv, XReg::arg(1));
    k.b.vop_vx(VAluOp::Srl, rv, rv, XReg::arg(3), true);
    k.b.vop_vi(VAluOp::And, rv, rv, 1, true);
    k.b.vse(sew, rv, XReg::arg(2));
    k.vflush(vs[0], rv);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// `dst[i] = flags[i] ? a[i] : b[i]` — the paper's `p-select`.
///
/// Loads `b` unmasked, overlays `a` under the flag mask (a masked unit
/// load), stores. `dst` may alias `a` or `b`.
///
/// Args: `a0` = n, `a1` = flags, `a2` = a (taken where flag set), `a3` = b,
/// `a4` = dst.
pub fn build_select(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "select", sew);
    let vs = k.declare(&["vf", "v"]);
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rf = k.vout(vs[0]);
    k.b.vle(sew, rf, XReg::arg(1));
    k.b.vcmp_vi(VCmp::Ne, VReg::V0, rf, 0, true);
    k.vflush(vs[0], rf);
    let rv = k.vout(vs[1]);
    k.b.vle(sew, rv, XReg::arg(3));
    // Masked load: active (flag-set) elements take a[i], others keep b[i].
    k.b.raw(rvv_isa::Instr::VLoad {
        eew: sew,
        vd: rv,
        rs1: XReg::arg(2),
        vm: false,
    });
    k.b.vse(sew, rv, XReg::arg(4));
    k.vflush(vs[1], rv);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2), XReg::arg(3), XReg::arg(4)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Out-of-place permutation `dst[index[i]] = src[i]` via indexed store
/// (`vsuxei`, the paper's §4.2).
///
/// Args: `a0` = n, `a1` = src, `a2` = dst base, `a3` = index (element
/// indices, not byte offsets — the kernel scales them).
pub fn build_permute(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "permute", sew);
    let vs = k.declare(&["vi", "vx"]);
    let log2 = sew.bytes().trailing_zeros() as i8;
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let ri = k.vout(vs[0]);
    k.b.vle(sew, ri, XReg::arg(3));
    k.b.vop_vi(VAluOp::Sll, ri, ri, log2, true);
    k.vflush(vs[0], ri);
    let rx = k.vout(vs[1]);
    k.b.vle(sew, rx, XReg::arg(1));
    let ri = k.vin(vs[0]);
    k.b.vsuxei(sew, rx, XReg::arg(2), ri);
    k.vflush(vs[1], rx);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(3)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Stream compaction (`pack`): keep flagged elements, preserving order, via
/// `vcompress` + a unit store of the packed prefix.
///
/// Args: `a0` = n, `a1` = src, `a2` = flags, `a3` = dst.
/// Returns the packed count in `a0`.
pub fn build_pack(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    use super::{T_CARRY, T_OFF, T_TMP};
    let mut k = kb(cfg, "pack", sew);
    let vs = k.declare(&["vf", "vx", "vp"]);
    let vmask = VReg::new(1);
    let log2 = sew.bytes().trailing_zeros() as i32;
    k.prologue();
    let done = k.b.label();
    k.b.li(T_CARRY, 0); // packed count
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rf = k.vout(vs[0]);
    k.b.vle(sew, rf, XReg::arg(2));
    k.b.vcmp_vi(VCmp::Ne, vmask, rf, 0, true);
    k.vflush(vs[0], rf);
    let rx = k.vout(vs[1]);
    k.b.vle(sew, rx, XReg::arg(1));
    k.vflush(vs[1], rx);
    let rp = k.vout(vs[2]);
    let rx = k.vin(vs[1]);
    k.b.raw(rvv_isa::Instr::VCompress {
        vd: rp,
        vs2: rx,
        vs1: vmask,
    });
    k.vflush(vs[2], rp);
    // Store only the packed prefix: shrink vl to the popcount for the store.
    k.b.vcpop(T_TMP, vmask);
    k.b.vsetvli(XReg::ZERO, T_TMP, vtype_of(cfg, sew));
    let rp = k.vin(vs[2]);
    k.b.vse(sew, rp, XReg::arg(3));
    // dst += popcount * esize; count += popcount.
    k.b.slli(T_OFF, T_TMP, log2);
    k.b.add(XReg::arg(3), XReg::arg(3), T_OFF);
    k.b.add(T_CARRY, T_CARRY, T_TMP);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.b.mv(XReg::arg(0), T_CARRY);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}
