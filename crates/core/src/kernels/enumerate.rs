//! `enumerate` kernel (paper §4.4, Listing 8): exclusive count of matching
//! flags, specialized through `viota` + `vcpop` instead of a generic
//! exclusive scan. The generic-scan formulation is kept too, as the ablation
//! target (`build_enumerate_via_scan`).

use super::{advance_and_loop, kb, vtype_of, T_CARRY, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::session::EnvConfig;
use rvv_isa::{Sew, VCmp, VReg, XReg};
use rvv_sim::Program;

/// `dst[i] = |{ j < i : flags[j] == set_bit }|`; returns the total count in
/// `a0`.
///
/// Args: `a0` = n, `a1` = flags, `a2` = dst, `a3` = set_bit (0 or 1).
pub fn build_enumerate(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    let mut k = kb(cfg, "enumerate", sew);
    let vs = k.declare(&["vf", "v"]);
    let vmask = VReg::new(1);
    k.prologue();
    let done = k.b.label();
    k.b.li(T_CARRY, 0);
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    let rf = k.vout(vs[0]);
    k.b.vle(sew, rf, XReg::arg(1));
    k.b.vcmp_vx(VCmp::Eq, vmask, rf, XReg::arg(3), true);
    k.vflush(vs[0], rf);
    let rv = k.vout(vs[1]);
    k.b.viota(rv, vmask);
    k.b.vop_vx(rvv_isa::VAluOp::Add, rv, rv, T_CARRY, true);
    k.b.vse(sew, rv, XReg::arg(2));
    k.vflush(vs[1], rv);
    k.b.vcpop(T_TMP, vmask);
    k.b.add(T_CARRY, T_CARRY, T_TMP);
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.b.mv(XReg::arg(0), T_CARRY);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

/// Ablation variant: enumerate as (flags == set_bit ? 1 : 0) followed by a
/// generic exclusive-scan strip body — what you would write *without* the
/// `viota` specialization. Same signature as [`build_enumerate`].
pub fn build_enumerate_via_scan(cfg: &EnvConfig, sew: Sew) -> ScanResult<Program> {
    use super::T_OFF;
    let mut k = kb(cfg, "enumerate_via_scan", sew);
    let vs = k.declare(&["x", "y", "zero"]);
    let (x, y, zero) = (vs[0], vs[1], vs[2]);
    let t_next = XReg::new(16);
    k.prologue();
    let done = k.b.label();
    k.b.li(T_CARRY, 0);
    k.b.beqz(XReg::arg(0), done);
    k.b.vsetvli(T_TMP, XReg::ZERO, vtype_of(cfg, sew));
    {
        let rz = k.vout(zero);
        k.b.vmv_vi(rz, 0);
        k.vflush(zero, rz);
    }
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    {
        // x = (flags == set_bit) ? 1 : 0, materialized without viota:
        // compare into v0 then vmerge 1/0.
        let rx = k.vout(x);
        k.b.vle(sew, rx, XReg::arg(1));
        k.b.vcmp_vx(VCmp::Eq, VReg::V0, rx, XReg::arg(3), true);
        let rz = k.vin(zero);
        k.b.raw(rvv_isa::Instr::VMergeVIM {
            vd: rx,
            vs2: rz,
            imm: 1,
        });
        k.vflush(x, rx);
    }
    // Inclusive in-register plus-scan ladder.
    let inner_done = k.b.label();
    k.b.li(T_OFF, 1);
    k.b.bgeu(T_OFF, T_VL, inner_done);
    let inner = k.b.label();
    k.b.bind(inner);
    {
        let rz = k.vin(zero);
        let ry = k.vout(y);
        k.b.vmv_vv(ry, rz);
        let rx = k.vin(x);
        k.b.vslideup_vx(ry, rx, T_OFF, true);
        k.b.vop_vv(rvv_isa::VAluOp::Add, rx, rx, ry, true);
        k.vflush(x, rx);
    }
    k.b.slli(T_OFF, T_OFF, 1);
    k.b.bltu(T_OFF, T_VL, inner);
    k.b.bind(inner_done);
    {
        // Add carry, convert to exclusive via slide1up(carry), store.
        let rx = k.vin(x);
        k.b.vop_vx(rvv_isa::VAluOp::Add, rx, rx, T_CARRY, true);
        k.b.addi(T_TMP, T_VL, -1);
        let ry = k.vout(y);
        k.b.vslidedown_vx(ry, rx, T_TMP, true);
        k.b.vmv_xs(t_next, ry);
        let ry = k.vout(y);
        k.b.raw(rvv_isa::Instr::VSlide1Up {
            vd: ry,
            vs2: rx,
            rs1: T_CARRY,
            vm: true,
        });
        k.b.vse(sew, ry, XReg::arg(2));
        k.vflush(y, ry);
        k.b.mv(T_CARRY, t_next);
    }
    advance_and_loop(
        &mut k.b,
        sew,
        &[XReg::arg(1), XReg::arg(2)],
        XReg::arg(0),
        head,
    );
    k.b.bind(done);
    k.b.mv(XReg::arg(0), T_CARRY);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use crate::session::{EnvConfig, ScanEnv};
    use rvv_asm::SpillProfile;
    use rvv_isa::Lmul;

    fn env() -> ScanEnv {
        ScanEnv::new(EnvConfig {
            vlen: 128,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 16 << 20,
        })
    }

    #[test]
    fn enumerate_matches_oracle_both_polarities() {
        let flags: Vec<u32> = (0..93).map(|i| u32::from(i % 3 == 1)).collect();
        for set_bit in [0u64, 1] {
            for build in [build_enumerate, build_enumerate_via_scan] {
                let mut e = env();
                let f = e.from_u32(&flags).unwrap();
                let d = e.alloc(Sew::E32, flags.len()).unwrap();
                let p = build(&e.config(), Sew::E32).unwrap();
                let (_, count) = e
                    .run_program(&p, &[flags.len() as u64, f.addr(), d.addr(), set_bit])
                    .unwrap();
                let (want, want_count) = native::enumerate(&flags, set_bit == 1);
                let got: Vec<u64> = e.to_u32(&d).iter().map(|&x| x as u64).collect();
                assert_eq!(got, want);
                assert_eq!(count, want_count);
            }
        }
    }

    #[test]
    fn viota_version_is_cheaper() {
        // The paper's point in §4.4: the viota specialization beats the
        // generic scan formulation.
        let flags: Vec<u32> = (0..1000).map(|i| u32::from(i % 2 == 0)).collect();
        let mut cost = Vec::new();
        for build in [build_enumerate, build_enumerate_via_scan] {
            let mut e = env();
            let f = e.from_u32(&flags).unwrap();
            let d = e.alloc(Sew::E32, flags.len()).unwrap();
            let p = build(&e.config(), Sew::E32).unwrap();
            let (report, _) = e
                .run_program(&p, &[flags.len() as u64, f.addr(), d.addr(), 1])
                .unwrap();
            cost.push(report.retired);
        }
        assert!(cost[0] < cost[1], "viota {} !< scan {}", cost[0], cost[1]);
    }
}
