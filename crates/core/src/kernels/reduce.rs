//! Reduction kernel: `⊕` over a whole device vector via `vred<op>.vs`.

use super::{advance_and_loop, kb, vtype_of, T_TMP, T_VL};
use crate::error::ScanResult;
use crate::ops::ScanOp;
use crate::session::EnvConfig;
use rvv_isa::{Sew, XReg};
use rvv_sim::Program;

/// Reduce a device vector; result in `a0` (truncated to SEW).
///
/// Args: `a0` = n, `a1` = ptr.
pub fn build_reduce(cfg: &EnvConfig, sew: Sew, op: ScanOp) -> ScanResult<Program> {
    let mut k = kb(cfg, &format!("reduce_{}", op.name()), sew);
    let vs = k.declare(&["x", "acc"]);
    let identity = op.identity(sew) as i64;
    k.prologue();
    let done = k.b.label();
    let empty = k.b.label();
    // acc[0] = identity, set under vl >= 1.
    k.b.li(T_TMP, identity);
    k.b.raw(rvv_isa::Instr::Vsetivli {
        rd: XReg::ZERO,
        uimm: 1,
        vtype: vtype_of(cfg, sew),
    });
    {
        let racc = k.vout(vs[1]);
        k.b.vmv_sx(racc, T_TMP);
        k.vflush(vs[1], racc);
    }
    k.b.beqz(XReg::arg(0), empty);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(T_VL, XReg::arg(0), vtype_of(cfg, sew));
    {
        let rx = k.vout(vs[0]);
        k.b.vle(sew, rx, XReg::arg(1));
        let racc = k.vin(vs[1]);
        k.b.vred(op.vred(), racc, rx, racc);
        k.vflush(vs[1], racc);
        k.vflush(vs[0], rx);
    }
    advance_and_loop(&mut k.b, sew, &[XReg::arg(1)], XReg::arg(0), head);
    k.b.bind(empty);
    {
        let racc = k.vin(vs[1]);
        k.b.vmv_xs(XReg::arg(0), racc);
    }
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    Ok(k.b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use crate::session::{EnvConfig, ScanEnv};
    use rvv_asm::SpillProfile;
    use rvv_isa::Lmul;

    #[test]
    fn reduce_matches_oracle() {
        let data: Vec<u32> = (0..157).map(|i| (i * 31 + 7) % 1009).collect();
        let elems: Vec<u64> = data.iter().map(|&x| x as u64).collect();
        for &op in &ScanOp::ALL {
            let mut e = ScanEnv::new(EnvConfig {
                vlen: 256,
                lmul: Lmul::M2,
                spill_profile: SpillProfile::llvm14(),
                mem_bytes: 8 << 20,
            });
            let v = e.from_u32(&data).unwrap();
            let p = build_reduce(&e.config(), Sew::E32, op).unwrap();
            let (_, got) = e.run_program(&p, &[data.len() as u64, v.addr()]).unwrap();
            // vmv.x.s sign-extends; compare at SEW.
            assert_eq!(
                Sew::E32.truncate(got),
                native::reduce(op, Sew::E32, &elems),
                "op={op}"
            );
        }
    }

    #[test]
    fn reduce_empty_is_identity() {
        for &op in &ScanOp::ALL {
            let mut e = ScanEnv::paper_default();
            let v = e.from_u32(&[]).unwrap();
            let p = build_reduce(&e.config(), Sew::E32, op).unwrap();
            let (_, got) = e.run_program(&p, &[0, v.addr()]).unwrap();
            assert_eq!(Sew::E32.truncate(got), op.identity(Sew::E32), "op={op}");
        }
    }
}
