//! The shared kernel-plan registry.
//!
//! [`PlanCache`] maps `(kernel name, KernelConfig, SpillProfile)` to a
//! pre-compiled [`CompiledPlan`] behind an `Arc`, so a kernel is generated
//! and lowered **exactly once per configuration** no matter how many
//! environments — or how many worker threads — launch it. `CompiledPlan`
//! is `Send + Sync` (its specialization caches are `OnceLock` slots), so
//! sharing the compiled form read-only across a thread pool is sound; all
//! mutable execution state lives in each worker's own `Machine`.
//!
//! The registry holds its map behind a [`Mutex`] and compiles *inside* the
//! lock: concurrent requests for the same key serialize, the first one
//! compiles, the rest get the same `Arc`. Kernel generation is one pass
//! over a few hundred instructions, so the critical section is short; the
//! launch hot path touches the lock only for a clone-out lookup.
//!
//! The compile counter exists for tests and observability: the batch
//! engine's one-compile-per-config invariant is asserted against it.

use crate::error::ScanResult;
use rvv_asm::SpillProfile;
use rvv_isa::KernelConfig;
use rvv_sim::{CompiledPlan, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

type PlanKey = (String, KernelConfig, SpillProfile);

/// A thread-safe registry of compiled kernel plans, keyed
/// `(name, KernelConfig, SpillProfile)`.
///
/// Create one per process (or per sweep) and hand clones of the `Arc` to
/// every [`crate::ScanEnv`] via [`crate::ScanEnv::with_cache`]; environments
/// built with [`crate::ScanEnv::new`] get a private registry and behave
/// exactly as before.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<CompiledPlan>>>,
    compiles: AtomicU64,
}

impl PlanCache {
    /// An empty registry.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty registry already wrapped for sharing.
    pub fn shared() -> Arc<PlanCache> {
        Arc::new(PlanCache::new())
    }

    /// Fetch the plan for `(name, config, profile)`, building and compiling
    /// it on first request. The build closure runs at most once per key
    /// across all threads — concurrent first requests serialize on the
    /// registry lock and every caller receives the same `Arc`.
    pub fn get_or_compile(
        &self,
        name: &str,
        config: KernelConfig,
        profile: SpillProfile,
        build: impl FnOnce() -> ScanResult<Program>,
    ) -> ScanResult<Arc<CompiledPlan>> {
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some(p) = plans.get(&(name.to_string(), config, profile)) {
            return Ok(Arc::clone(p));
        }
        let plan = Arc::new(CompiledPlan::compile(build()?));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        plans.insert((name.to_string(), config, profile), Arc::clone(&plan));
        Ok(plan)
    }

    /// How many plans have been compiled into this registry (monotonic;
    /// unaffected by [`PlanCache::clear`]). With correct sharing this equals
    /// the number of distinct `(name, config, profile)` keys ever requested.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// The cached plan keys, formatted
    /// `name@vlen<V>/<SEW>/<LMUL>/<profile>` and sorted — a deterministic,
    /// human-readable inventory of what has been compiled. Environment
    /// snapshots embed this list so a resumed run can see (and log) which
    /// kernels the interrupted process had built; plans themselves are
    /// never serialized — they are pure functions of the kernel source and
    /// recompile on demand.
    pub fn keys(&self) -> Vec<String> {
        let plans = self.plans.lock().expect("plan cache poisoned");
        let mut keys: Vec<String> = plans
            .keys()
            .map(|(name, cfg, profile)| {
                format!(
                    "{name}@vlen{}/{:?}/{:?}/{}",
                    cfg.vlen,
                    cfg.sew,
                    cfg.lmul,
                    if profile.conservative_frame {
                        "llvm14"
                    } else {
                        "ideal"
                    }
                )
            })
            .collect();
        keys.sort();
        keys
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (outstanding `Arc`s stay valid). The compile
    /// counter is *not* reset, so post-clear recompiles remain visible.
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::{Instr, Lmul, Sew};

    fn key(vlen: u32) -> KernelConfig {
        KernelConfig {
            vlen,
            sew: Sew::E32,
            lmul: Lmul::M1,
        }
    }

    fn nop_program() -> ScanResult<Program> {
        Ok(Program::new("nop", vec![Instr::Ecall]))
    }

    #[test]
    fn compiles_once_per_key() {
        let cache = PlanCache::new();
        let a = cache
            .get_or_compile("nop", key(1024), SpillProfile::llvm14(), nop_program)
            .unwrap();
        let b = cache
            .get_or_compile("nop", key(1024), SpillProfile::llvm14(), || {
                panic!("must not rebuild a cached key")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.compiles(), 1);
        // Any key component change is a distinct plan.
        cache
            .get_or_compile("nop", key(512), SpillProfile::llvm14(), nop_program)
            .unwrap();
        cache
            .get_or_compile("nop", key(1024), SpillProfile::ideal(), nop_program)
            .unwrap();
        cache
            .get_or_compile("nop2", key(1024), SpillProfile::llvm14(), nop_program)
            .unwrap();
        assert_eq!(cache.compiles(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PlanCache::new();
        let r = cache.get_or_compile("bad", key(1024), SpillProfile::llvm14(), || {
            Err(crate::ScanError::LengthMismatch {
                what: "test",
                a: 1,
                b: 2,
            })
        });
        assert!(r.is_err());
        assert_eq!(cache.compiles(), 0);
        // The key stays available for a later successful build.
        cache
            .get_or_compile("bad", key(1024), SpillProfile::llvm14(), nop_program)
            .unwrap();
        assert_eq!(cache.compiles(), 1);
    }

    #[test]
    fn concurrent_requests_compile_once() {
        let cache = PlanCache::shared();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..100 {
                        cache
                            .get_or_compile("nop", key(1024), SpillProfile::llvm14(), nop_program)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.compiles(), 1);
    }
}
