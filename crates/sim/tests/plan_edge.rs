//! Edge cases of plan compilation and the plan driver's control flow:
//! branches to the program boundary, falling off the end, dynamic jumps,
//! vtype flips re-resolving the per-op specialization cache, and fuel
//! exhaustion — every case checked against the legacy interpreter.

use rvv_isa::{AluOp, BranchCond, Instr, Lmul, Sew, VAluOp, VReg, VType, XReg};
use rvv_sim::{CompiledPlan, Machine, MachineConfig, Program, SimError};

fn machine() -> Machine {
    Machine::new(MachineConfig {
        vlen: 128,
        mem_bytes: 1 << 16,
    })
}

/// Run `p` through both engines and assert identical results and counters.
fn both(p: &Program, fuel: u64) -> Result<rvv_sim::RunReport, SimError> {
    let plan = CompiledPlan::compile(p.clone());
    let mut m1 = machine();
    let mut m2 = machine();
    let r1 = m1.run_plan(&plan, fuel);
    let r2 = m2.run_legacy(p, fuel);
    assert_eq!(r1, r2, "engines disagree on {}", p.name);
    assert_eq!(m1.counters, m2.counters, "counters disagree on {}", p.name);
    r1
}

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::OpImm {
        op: AluOp::Add,
        rd: XReg::new(rd),
        rs1: XReg::new(rs1),
        imm,
    }
}

#[test]
fn branch_to_last_instruction() {
    // beq x0, x0, +8 skips the addi and lands exactly on the final ecall.
    let p = Program::new(
        "to-last",
        vec![
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: XReg::ZERO,
                rs2: XReg::ZERO,
                offset: 8,
            },
            addi(5, 0, 99),
            Instr::Ecall,
        ],
    );
    let r = both(&p, 100).unwrap();
    assert_eq!(r.retired, 2);
    assert_eq!(r.halt_pc, 8);
}

#[test]
fn branch_one_past_the_end_traps_with_boundary_target() {
    // A taken branch to index == len is a *valid jump* that then falls off
    // the end: the branch itself retires, the trap reports the boundary PC.
    let p = Program::new(
        "past-end",
        vec![Instr::Branch {
            cond: BranchCond::Eq,
            rs1: XReg::ZERO,
            rs2: XReg::ZERO,
            offset: 4,
        }],
    );
    let r = both(&p, 100);
    assert_eq!(r, Err(SimError::BadControlFlow { target: 4 }));
}

#[test]
fn fall_off_the_end_after_straight_line() {
    let p = Program::new("fall-off", vec![addi(5, 0, 1), addi(6, 0, 2)]);
    let r = both(&p, 100);
    assert_eq!(r, Err(SimError::BadControlFlow { target: 8 }));
}

#[test]
fn misaligned_jump_target_reports_the_byte_address() {
    // jal +6: misaligned. The jal retires (it counts!) and the trap carries
    // the exact byte target.
    let p = Program::new(
        "misaligned",
        vec![Instr::Jal {
            rd: XReg::ZERO,
            offset: 6,
        }],
    );
    let r = both(&p, 100);
    assert_eq!(r, Err(SimError::BadControlFlow { target: 6 }));
}

#[test]
fn dynamic_jalr_in_and_out_of_range() {
    // jalr through x5: first to the ecall (valid), then re-run with a wild
    // address seeded.
    let p = Program::new(
        "jalr",
        vec![
            Instr::Jalr {
                rd: XReg::new(1),
                rs1: XReg::new(5),
                offset: 0,
            },
            addi(6, 0, 1),
            Instr::Ecall,
        ],
    );
    let plan = CompiledPlan::compile(p.clone());
    for target in [8u64, 0x1000, 10, 5] {
        let mut m1 = machine();
        let mut m2 = machine();
        m1.set_xreg(XReg::new(5), target);
        m2.set_xreg(XReg::new(5), target);
        let r1 = m1.run_plan(&plan, 100);
        let r2 = m2.run_legacy(&p, 100);
        assert_eq!(r1, r2, "jalr to {target:#x}");
        if target == 8 {
            assert_eq!(r1.unwrap().halt_pc, 8);
            assert_eq!(m1.xreg(XReg::new(1)), 4, "link register");
            assert_eq!(m1.xreg(XReg::new(6)), 0, "skipped instruction ran");
        } else {
            // jalr clears bit 0 before the bounds check (5 → 4 is valid!).
            let expect = target & !1;
            if expect == 4 {
                assert!(r1.is_ok());
            } else {
                assert_eq!(r1, Err(SimError::BadControlFlow { target: expect }));
            }
        }
    }
}

#[test]
fn vsetvl_flipping_vtype_re_resolves_the_kernel_cache() {
    // One vadd.vi micro-op executed under alternating SEW/LMUL: the loop
    // carries the vtype bits in x11 and xors them each iteration, so the
    // same cached kernel slot must be re-resolved e32m1 → e8m2 → e32m1 → …
    let a = VType::new(Sew::E32, Lmul::M1).to_bits();
    let b = VType::new(Sew::E8, Lmul::M2).to_bits();
    let p = Program::new(
        "flip",
        vec![
            addi(5, 0, 6),  // x5 = iterations
            addi(10, 0, 4), // x10 = avl
            addi(11, 0, a as i32),
            addi(12, 0, (a ^ b) as i32),
            // loop:
            Instr::Vsetvl {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                rs2: XReg::new(11),
            },
            Instr::VOpVI {
                op: VAluOp::Add,
                vd: VReg::new(2),
                vs2: VReg::new(2),
                imm: 1,
                vm: true,
            },
            Instr::Op {
                op: AluOp::Xor,
                rd: XReg::new(11),
                rs1: XReg::new(11),
                rs2: XReg::new(12),
            },
            addi(5, 5, -1),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: XReg::new(5),
                rs2: XReg::ZERO,
                offset: -16,
            },
            Instr::Ecall,
        ],
    );
    let plan = CompiledPlan::compile(p.clone());
    let mut m1 = machine();
    let mut m2 = machine();
    let r1 = m1.run_plan(&plan, 1000).unwrap();
    let r2 = m2.run_legacy(&p, 1000).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(m1.counters, m2.counters);
    for v in 0..32 {
        assert_eq!(
            m1.vreg_bytes(VReg::new(v)),
            m2.vreg_bytes(VReg::new(v)),
            "v{v} diverged"
        );
    }
    // Three iterations each way actually touched both element widths.
    assert_ne!(m1.vreg_bytes(VReg::new(2)), &vec![0u8; 16][..]);
}

#[test]
fn fuel_exhaustion_mid_block() {
    // Straight-line code long enough that fuel runs out in the middle:
    // both engines must stop at exactly the same retired count.
    let mut instrs: Vec<Instr> = (0..20).map(|i| addi(5, 5, i)).collect();
    instrs.push(Instr::Ecall);
    let p = Program::new("mid-block", instrs);
    let plan = CompiledPlan::compile(p.clone());
    for fuel in [1u64, 7, 19, 20] {
        let mut m1 = machine();
        let mut m2 = machine();
        let r1 = m1.run_plan(&plan, fuel);
        let r2 = m2.run_legacy(&p, fuel);
        assert_eq!(r1, r2, "fuel {fuel}");
        assert_eq!(r1, Err(SimError::FuelExhausted { fuel }));
        assert_eq!(m1.counters.total(), m2.counters.total());
        assert_eq!(m1.xreg(XReg::new(5)), m2.xreg(XReg::new(5)));
    }
    // With just enough fuel the run completes.
    let mut m = machine();
    assert!(m.run_plan(&plan, 21).is_ok());
}

#[test]
fn empty_program_traps_immediately() {
    let p = Program::new("empty", vec![]);
    let r = both(&p, 10);
    assert_eq!(r, Err(SimError::BadControlFlow { target: 0 }));
}

#[test]
fn traced_runs_produce_identical_event_streams() {
    use rvv_sim::{RetireEvent, TraceSink};
    #[derive(Default)]
    struct Rec(Vec<(u64, u64, String, u32)>);
    impl TraceSink for Rec {
        fn retire(&mut self, e: &RetireEvent<'_>) {
            self.0.push((e.seq, e.pc, e.instr.to_string(), e.vl));
        }
    }
    let p = Program::new(
        "traced",
        vec![
            addi(10, 0, 8),
            Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E16, Lmul::M1),
            },
            Instr::VOpVI {
                op: VAluOp::Add,
                vd: VReg::new(2),
                vs2: VReg::new(2),
                imm: 3,
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    let plan = CompiledPlan::compile(p.clone());
    let mut s1 = Rec::default();
    let mut s2 = Rec::default();
    let mut m1 = machine();
    let mut m2 = machine();
    let r1 = m1.run_plan_traced(&plan, 100, &mut s1).unwrap();
    let r2 = m2.run_legacy_traced(&p, 100, &mut s2).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(s1.0, s2.0, "trace event streams diverged");
    assert_eq!(s1.0.len() as u64, r1.retired);
}
