//! Robustness fuzz: the simulator must never panic, whatever instructions
//! it executes — traps must surface as typed `SimError`s.
//!
//! Instruction soup is produced by *decoding random 32-bit words*: anything
//! `rvv_isa::decode` accepts is by construction a well-formed instruction
//! of the modelled subset, so this sweeps the whole decode→execute surface
//! (including misaligned groups, vill configurations, wild memory
//! addresses, and overlap constraints) without hand-writing generators.

use proptest::prelude::*;
use rvv_isa::{decode, Instr, VReg, XReg};
use rvv_sim::{CompiledPlan, Machine, MachineConfig, Program};

fn soup(words: &[u32]) -> Vec<Instr> {
    words.iter().filter_map(|&w| decode(w).ok()).collect()
}

/// Assert two machines are architecturally indistinguishable: registers,
/// vector state, configuration, counters, and every byte of memory.
fn assert_same_state(plan: &Machine, legacy: &Machine) {
    for i in 0..32 {
        assert_eq!(
            plan.xreg(XReg::new(i)),
            legacy.xreg(XReg::new(i)),
            "x{i} diverged"
        );
    }
    for v in 0..32 {
        assert_eq!(
            plan.vreg_bytes(VReg::new(v)),
            legacy.vreg_bytes(VReg::new(v)),
            "v{v} diverged"
        );
    }
    assert_eq!(plan.vl(), legacy.vl(), "vl diverged");
    assert_eq!(plan.vtype(), legacy.vtype(), "vtype diverged");
    assert_eq!(plan.counters, legacy.counters, "counters diverged");
    let size = plan.mem.size();
    assert_eq!(size, legacy.mem.size());
    assert_eq!(
        plan.mem.read_bytes(0, size).unwrap(),
        legacy.mem.read_bytes(0, size).unwrap(),
        "memory diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decoded_soup_never_panics(
        words in prop::collection::vec(any::<u32>(), 0..200),
        vlen_shift in 7u32..11, // 128..1024
        seed_regs in prop::collection::vec(any::<u64>(), 8),
    ) {
        let mut m = Machine::new(MachineConfig {
            vlen: 1 << vlen_shift,
            mem_bytes: 1 << 16,
        });
        // Point the argument registers somewhere interesting (mostly in
        // bounds) so loads/stores sometimes succeed.
        for (i, &s) in seed_regs.iter().enumerate() {
            m.set_xreg(rvv_isa::XReg::arg(i as u8), s % (1 << 16));
        }
        let mut instrs = soup(&words);
        instrs.push(Instr::Ecall); // give straight-line runs a clean exit
        let p = Program::new("soup", instrs);
        // Traps are fine; panics are not. Fuel bounds runaway loops.
        let _ = m.run(&p, 50_000);
    }

    #[test]
    fn soup_with_vector_config_first(
        words in prop::collection::vec(any::<u32>(), 0..200),
        avl in 1u64..64,
    ) {
        // Prime a legal vtype so vector instructions actually execute
        // instead of tripping on vill immediately.
        let mut m = Machine::new(MachineConfig { vlen: 256, mem_bytes: 1 << 16 });
        m.set_xreg(rvv_isa::XReg::new(10), avl);
        let mut instrs = vec![Instr::Vsetvli {
            rd: rvv_isa::XReg::ZERO,
            rs1: rvv_isa::XReg::new(10),
            vtype: rvv_isa::VType::new(rvv_isa::Sew::E32, rvv_isa::Lmul::M2),
        }];
        instrs.extend(soup(&words));
        instrs.push(Instr::Ecall);
        let p = Program::new("vsoup", instrs);
        let _ = m.run(&p, 50_000);
        // The machine stays usable after any trap.
        let ok = Program::new("ok", vec![Instr::Ecall]);
        prop_assert!(m.run(&ok, 10).is_ok());
    }

    /// Three-engine differential: the plan engine *and* the fused engine
    /// must be architecturally indistinguishable from the legacy
    /// single-step interpreter on arbitrary decoded soup — same result
    /// (report or trap, including trap byte addresses), same final
    /// registers, vector state, counters, and memory.
    #[test]
    fn plan_and_fused_match_legacy_on_soup(
        words in prop::collection::vec(any::<u32>(), 0..200),
        vlen_shift in 7u32..11,
        seed_regs in prop::collection::vec(any::<u64>(), 8),
    ) {
        let cfg = MachineConfig {
            vlen: 1 << vlen_shift,
            mem_bytes: 1 << 16,
        };
        let mut instrs = soup(&words);
        instrs.push(Instr::Ecall);
        let p = Program::new("soup", instrs);
        let plan = CompiledPlan::compile(p.clone());
        let mut m1 = Machine::new(cfg);
        let mut m2 = Machine::new(cfg);
        let mut m3 = Machine::new(cfg);
        for (i, &s) in seed_regs.iter().enumerate() {
            m1.set_xreg(XReg::arg(i as u8), s % (1 << 16));
            m2.set_xreg(XReg::arg(i as u8), s % (1 << 16));
            m3.set_xreg(XReg::arg(i as u8), s % (1 << 16));
        }
        let r1 = m1.run_plan(&plan, 50_000);
        let r2 = m2.run_legacy(&p, 50_000);
        let r3 = m3.run_fused(&plan, 50_000);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r3, &r2);
        assert_same_state(&m1, &m2);
        assert_same_state(&m3, &m2);
    }

    /// Differential soup with a legal vtype primed first, so the vector
    /// kernels (the SEW-specialized fast paths and the fused windows)
    /// actually execute.
    #[test]
    fn plan_and_fused_match_legacy_on_vector_soup(
        words in prop::collection::vec(any::<u32>(), 0..200),
        avl in 1u64..64,
        sew_pick in 0u8..4,
        lmul_pick in 0u8..4,
    ) {
        let cfg = MachineConfig { vlen: 256, mem_bytes: 1 << 16 };
        let sew = [rvv_isa::Sew::E8, rvv_isa::Sew::E16, rvv_isa::Sew::E32, rvv_isa::Sew::E64][sew_pick as usize];
        let lmul = [rvv_isa::Lmul::M1, rvv_isa::Lmul::M2, rvv_isa::Lmul::M4, rvv_isa::Lmul::M8][lmul_pick as usize];
        let mut instrs = vec![Instr::Vsetvli {
            rd: XReg::ZERO,
            rs1: XReg::new(10),
            vtype: rvv_isa::VType::new(sew, lmul),
        }];
        instrs.extend(soup(&words));
        instrs.push(Instr::Ecall);
        let p = Program::new("vsoup", instrs);
        let plan = CompiledPlan::compile(p.clone());
        let mut m1 = Machine::new(cfg);
        let mut m2 = Machine::new(cfg);
        let mut m3 = Machine::new(cfg);
        m1.set_xreg(XReg::new(10), avl);
        m2.set_xreg(XReg::new(10), avl);
        m3.set_xreg(XReg::new(10), avl);
        let r1 = m1.run_plan(&plan, 50_000);
        let r2 = m2.run_legacy(&p, 50_000);
        let r3 = m3.run_fused(&plan, 50_000);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r3, &r2);
        assert_same_state(&m1, &m2);
        assert_same_state(&m3, &m2);
    }
}
