//! Robustness fuzz: the simulator must never panic, whatever instructions
//! it executes — traps must surface as typed `SimError`s.
//!
//! Instruction soup is produced by *decoding random 32-bit words*: anything
//! `rvv_isa::decode` accepts is by construction a well-formed instruction
//! of the modelled subset, so this sweeps the whole decode→execute surface
//! (including misaligned groups, vill configurations, wild memory
//! addresses, and overlap constraints) without hand-writing generators.

use proptest::prelude::*;
use rvv_isa::{decode, Instr};
use rvv_sim::{Machine, MachineConfig, Program};

fn soup(words: &[u32]) -> Vec<Instr> {
    words.iter().filter_map(|&w| decode(w).ok()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decoded_soup_never_panics(
        words in prop::collection::vec(any::<u32>(), 0..200),
        vlen_shift in 7u32..11, // 128..1024
        seed_regs in prop::collection::vec(any::<u64>(), 8),
    ) {
        let mut m = Machine::new(MachineConfig {
            vlen: 1 << vlen_shift,
            mem_bytes: 1 << 16,
        });
        // Point the argument registers somewhere interesting (mostly in
        // bounds) so loads/stores sometimes succeed.
        for (i, &s) in seed_regs.iter().enumerate() {
            m.set_xreg(rvv_isa::XReg::arg(i as u8), s % (1 << 16));
        }
        let mut instrs = soup(&words);
        instrs.push(Instr::Ecall); // give straight-line runs a clean exit
        let p = Program::new("soup", instrs);
        // Traps are fine; panics are not. Fuel bounds runaway loops.
        let _ = m.run(&p, 50_000);
    }

    #[test]
    fn soup_with_vector_config_first(
        words in prop::collection::vec(any::<u32>(), 0..200),
        avl in 1u64..64,
    ) {
        // Prime a legal vtype so vector instructions actually execute
        // instead of tripping on vill immediately.
        let mut m = Machine::new(MachineConfig { vlen: 256, mem_bytes: 1 << 16 });
        m.set_xreg(rvv_isa::XReg::new(10), avl);
        let mut instrs = vec![Instr::Vsetvli {
            rd: rvv_isa::XReg::ZERO,
            rs1: rvv_isa::XReg::new(10),
            vtype: rvv_isa::VType::new(rvv_isa::Sew::E32, rvv_isa::Lmul::M2),
        }];
        instrs.extend(soup(&words));
        instrs.push(Instr::Ecall);
        let p = Program::new("vsoup", instrs);
        let _ = m.run(&p, 50_000);
        // The machine stays usable after any trap.
        let ok = Program::new("ok", vec![Instr::Ecall]);
        prop_assert!(m.run(&ok, 10).is_ok());
    }
}
