//! Checkpoint/resume at the machine level: snapshots capture the exact
//! architectural state, restore reproduces it bit for bit, and a run
//! paused by fuel exhaustion and resumed from `stop_pc` — on either
//! engine, any number of times — is indistinguishable from an
//! uninterrupted run (same outputs, same retired counts, same trap text).

use proptest::prelude::*;
use rvv_isa::{AluOp, Instr, Lmul, Sew, VAluOp, VReg, VType, XReg};
use rvv_sim::{
    CompiledPlan, Machine, MachineConfig, MachineSnapshot, Memory, Program, SimError, DEFAULT_FUEL,
    PAGE_BYTES,
};

fn machine() -> Machine {
    Machine::new(MachineConfig {
        vlen: 128,
        mem_bytes: 1 << 16,
    })
}

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::OpImm {
        op: AluOp::Add,
        rd: XReg::new(rd),
        rs1: XReg::new(rs1),
        imm,
    }
}

/// A program touching every snapshotted state component: scalar regs, two
/// vtype configurations, vector ALU state, and memory loads/stores.
fn vector_program() -> Program {
    Program::new(
        "snapshot-target",
        vec![
            addi(10, 0, 8),
            Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E16, Lmul::M1),
            },
            Instr::VOpVI {
                op: VAluOp::Add,
                vd: VReg::new(2),
                vs2: VReg::new(2),
                imm: 3,
                vm: true,
            },
            addi(11, 0, 64),
            Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M2),
            },
            Instr::VLoad {
                eew: Sew::E32,
                vd: VReg::new(4),
                rs1: XReg::new(11),
                vm: true,
            },
            Instr::VOpVI {
                op: VAluOp::Add,
                vd: VReg::new(4),
                vs2: VReg::new(4),
                imm: 7,
                vm: true,
            },
            addi(12, 0, 512),
            Instr::VStore {
                eew: Sew::E32,
                vs3: VReg::new(4),
                rs1: XReg::new(12),
                vm: true,
            },
            addi(13, 12, -8),
            Instr::Ecall,
        ],
    )
}

fn stage(m: &mut Machine) {
    m.mem.write_u32_slice(64, &[10, 20, 30, 40, 50, 60, 70, 80]);
}

/// Snapshot comparison modulo `stop_pc` (a resumed machine remembers its
/// last pause point; an uninterrupted one has none — everything
/// architectural must still agree).
fn assert_same_state(a: &Machine, b: &Machine) {
    let mut sa = a.snapshot();
    let mut sb = b.snapshot();
    sa.stop_pc = 0;
    sb.stop_pc = 0;
    assert_eq!(sa, sb);
}

#[test]
fn memory_snapshot_is_o_dirty_not_o_mem() {
    let mut m = Memory::new(64 << 20);
    m.poke(0, 8, 0x1122).unwrap();
    m.poke(40 << 20, 4, 7).unwrap();
    m.write_u32_slice(PAGE_BYTES * 3, &[1, 2, 3]);
    assert_eq!(m.dirty_pages(), 3);
    let snap = m.snapshot();
    assert_eq!(snap.pages.len(), 3, "snapshot copies only written pages");
    let copied: usize = snap.pages.iter().map(|(_, d)| d.len()).sum();
    assert!(copied <= 3 * PAGE_BYTES as usize);

    let mut fresh = Memory::new(64 << 20);
    fresh.restore(&snap);
    assert_eq!(fresh.peek(0, 8).unwrap(), 0x1122);
    assert_eq!(fresh.peek(40 << 20, 4).unwrap(), 7);
    assert_eq!(fresh.read_u32_slice(PAGE_BYTES * 3, 3), vec![1, 2, 3]);
}

#[test]
fn memory_restore_rezeroes_pages_written_after_the_snapshot() {
    let mut m = Memory::new(1 << 16);
    m.poke(100, 8, 0xaaaa).unwrap();
    let snap = m.snapshot();
    // Writes after the snapshot — including to a page the snapshot never
    // saw — must vanish on restore.
    m.poke(100, 8, 0xbbbb).unwrap();
    m.poke(3 * PAGE_BYTES + 5, 4, 0xcccc).unwrap();
    m.restore(&snap);
    assert_eq!(m.peek(100, 8).unwrap(), 0xaaaa);
    assert_eq!(m.peek(3 * PAGE_BYTES + 5, 4).unwrap(), 0);
    assert_eq!(m.snapshot(), snap, "restore reproduces the snapshot state");
}

#[test]
fn memory_restore_preserves_guard_regions_and_handles() {
    let mut m = Memory::new(1 << 16);
    let g0 = m.add_guard(512..640);
    m.remove_guard(g0);
    let g1 = m.add_guard(1024..1056);
    let snap = m.snapshot();
    m.clear_guards();
    m.restore(&snap);
    assert!(matches!(m.load(1024, 4), Err(SimError::GuardHit { .. })));
    assert!(m.load(512, 4).is_ok(), "disarmed guard stays disarmed");
    m.remove_guard(g1);
    assert!(m.load(1024, 4).is_ok(), "guard handles survive restore");
}

#[test]
fn machine_snapshot_serialization_round_trips_and_rejects_corruption() {
    let mut m = machine();
    stage(&mut m);
    let plan = CompiledPlan::compile(vector_program());
    assert!(matches!(
        m.run_plan(&plan, 5),
        Err(SimError::FuelExhausted { fuel: 5 })
    ));
    let snap = m.snapshot();
    let bytes = snap.to_bytes();
    assert_eq!(MachineSnapshot::from_bytes(&bytes).unwrap(), snap);

    // Any single corrupt byte is detected, never silently restored.
    for i in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(MachineSnapshot::from_bytes(&bad).is_err(), "byte {i}");
    }
    assert!(MachineSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
}

#[test]
fn pause_restore_resume_matches_uninterrupted_at_every_fuel_on_both_engines() {
    let program = vector_program();
    let plan = CompiledPlan::compile(program.clone());

    let mut reference = machine();
    stage(&mut reference);
    let full = reference.run_plan(&plan, DEFAULT_FUEL).unwrap();

    for legacy in [false, true] {
        for k in 1..full.retired {
            let mut m = machine();
            stage(&mut m);
            let paused = if legacy {
                m.run_legacy(&program, k)
            } else {
                m.run_plan(&plan, k)
            };
            assert!(
                matches!(paused, Err(SimError::FuelExhausted { .. })),
                "legacy={legacy} k={k}"
            );
            let snap = m.snapshot();

            // Restore into a *fresh* machine and continue from stop_pc.
            let mut resumed = machine();
            resumed.restore(&snap);
            assert_eq!(resumed.stop_pc(), snap.stop_pc);
            let rest = if legacy {
                resumed.run_legacy_from(&program, DEFAULT_FUEL, resumed.stop_pc())
            } else {
                resumed.run_plan_from(&plan, DEFAULT_FUEL, resumed.stop_pc())
            }
            .unwrap_or_else(|e| panic!("legacy={legacy} k={k}: resume trapped: {e}"));

            assert_eq!(k + rest.retired, full.retired, "legacy={legacy} k={k}");
            assert_eq!(rest.halt_pc, full.halt_pc, "legacy={legacy} k={k}");
            assert_same_state(&resumed, &reference);
        }
    }
}

#[test]
fn double_interruption_still_matches() {
    let program = vector_program();
    let plan = CompiledPlan::compile(program.clone());
    let mut reference = machine();
    stage(&mut reference);
    let full = reference.run_plan(&plan, DEFAULT_FUEL).unwrap();

    let mut m = machine();
    stage(&mut m);
    assert!(m.run_plan(&plan, 3).is_err());
    let first = m.snapshot();

    let mut m2 = machine();
    m2.restore(&first);
    assert!(m2.run_plan_from(&plan, 4, m2.stop_pc()).is_err());
    let second = m2.snapshot();

    let mut m3 = machine();
    m3.restore(&second);
    let rest = m3.run_plan_from(&plan, DEFAULT_FUEL, m3.stop_pc()).unwrap();
    assert_eq!(3 + 4 + rest.retired, full.retired);
    assert_same_state(&m3, &reference);
}

#[test]
fn pause_on_a_pending_bad_jump_reproduces_the_trap_text() {
    // jalr to a misaligned target: the jump retires, then the *next*
    // iteration traps. Pausing exactly between the two must reproduce the
    // identical BadControlFlow on resume.
    let p = Program::new(
        "misaligned",
        vec![Instr::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            offset: 6,
        }],
    );
    let plan = CompiledPlan::compile(p.clone());

    let mut uninterrupted = machine();
    let want = uninterrupted.run_plan(&plan, 100).unwrap_err();

    for legacy in [false, true] {
        let mut m = machine();
        let paused = if legacy {
            m.run_legacy(&p, 1)
        } else {
            m.run_plan(&plan, 1)
        };
        assert!(matches!(paused, Err(SimError::FuelExhausted { .. })));
        let snap = m.snapshot();
        let mut r = machine();
        r.restore(&snap);
        let got = if legacy {
            r.run_legacy_from(&p, 100, r.stop_pc())
        } else {
            r.run_plan_from(&plan, 100, r.stop_pc())
        }
        .unwrap_err();
        assert_eq!(got, want, "legacy={legacy}");
        assert_eq!(got.to_string(), want.to_string(), "legacy={legacy}");
    }
}

proptest! {
    /// Arbitrary machine state survives snapshot → serialize →
    /// deserialize → restore with nothing lost.
    #[test]
    fn arbitrary_state_round_trips_through_bytes(
        xregs in proptest::collection::vec(any::<u64>(), 31),
        velems in proptest::collection::vec((0u8..32, 0u32..4, any::<u64>()), 0..16),
        pokes in proptest::collection::vec((0u64..65000, any::<u64>()), 0..16),
        vl in 0u32..5,
        stop_pc in any::<u64>(),
    ) {
        let mut m = machine();
        for (i, v) in xregs.iter().enumerate() {
            m.set_xreg(XReg::new(i as u8 + 1), *v);
        }
        for (r, i, v) in &velems {
            m.set_velem(VReg::new(*r), *i, Sew::E32, *v);
        }
        for (addr, v) in &pokes {
            m.mem.poke(*addr, 8, *v).unwrap();
        }
        // Set vl/vtype through a real vsetvli so the state is reachable.
        let p = Program::new("cfg", vec![
            Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
            Instr::Ecall,
        ]);
        let save_x10 = m.xreg(XReg::new(10));
        m.set_xreg(XReg::new(10), u64::from(vl));
        m.run_legacy(&p, 10).unwrap();
        m.set_xreg(XReg::new(10), save_x10);
        let _ = stop_pc; // stop_pc is run-loop-owned; exercised elsewhere

        let snap = m.snapshot();
        let decoded = MachineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &snap);

        let mut fresh = machine();
        fresh.restore(&decoded);
        prop_assert_eq!(fresh.snapshot(), snap);
    }
}
