//! Targeted fused-tier tests: programs shaped like the scan-vector-model
//! kernels, so every window kind (map strip, map.vv, scan step,
//! whole-register chain) actually takes the fused fast path — the random
//! soup in `fuzz_exec.rs` almost never forms adjacent windows, so it mostly
//! exercises the fallback. Each test runs legacy, plan, and fused engines
//! and requires bit-identical results, state, and counters, then asserts
//! via [`Machine::fused_stats`] that fusion really fired (or really did
//! not, for the fallback cases).

use rvv_isa::{AluOp, BranchCond, Instr, Lmul, Sew, VAluOp, VReg, VType, XReg};
use rvv_sim::{CompiledPlan, Machine, MachineConfig, Program, RetireEvent, TraceSink};

fn machine() -> Machine {
    Machine::new(MachineConfig {
        vlen: 256,
        mem_bytes: 1 << 16,
    })
}

fn x(n: u8) -> XReg {
    XReg::new(n)
}

fn v(n: u8) -> VReg {
    VReg::new(n)
}

/// Full architectural-state comparison, as in `fuzz_exec.rs`.
fn assert_same_state(a: &Machine, b: &Machine) {
    for i in 0..32 {
        assert_eq!(a.xreg(x(i)), b.xreg(x(i)), "x{i} diverged");
    }
    for r in 0..32 {
        assert_eq!(a.vreg_bytes(v(r)), b.vreg_bytes(v(r)), "v{r} diverged");
    }
    assert_eq!(a.vl(), b.vl(), "vl diverged");
    assert_eq!(a.vtype(), b.vtype(), "vtype diverged");
    assert_eq!(a.counters, b.counters, "counters diverged");
    let size = a.mem.size();
    assert_eq!(size, b.mem.size());
    assert_eq!(
        a.mem.read_bytes(0, size).unwrap(),
        b.mem.read_bytes(0, size).unwrap(),
        "memory diverged"
    );
}

/// Run `p` on all three engines with identical setup, assert they are
/// indistinguishable, and hand back the fused machine for fusion-activity
/// assertions.
fn three_way(p: &Program, fuel: u64, setup: impl Fn(&mut Machine)) -> Machine {
    let plan = CompiledPlan::compile(p.clone());
    let mut ml = machine();
    let mut mp = machine();
    let mut mf = machine();
    setup(&mut ml);
    setup(&mut mp);
    setup(&mut mf);
    let rl = ml.run_legacy(p, fuel);
    let rp = mp.run_plan(&plan, fuel);
    let rf = mf.run_fused(&plan, fuel);
    assert_eq!(rp, rl, "plan vs legacy result");
    assert_eq!(rf, rl, "fused vs legacy result");
    ml.mem.clear_guards();
    mp.mem.clear_guards();
    mf.mem.clear_guards();
    assert_same_state(&mp, &ml);
    assert_same_state(&mf, &ml);
    mf
}

/// A strip-mined elementwise loop, the shape `build_elem_vx` emits:
///
/// ```text
/// loop: vsetvli t0, a0, e32m2
///       vle32.v  v4, (a1)
///       vadd.vx  v4, v4, a2
///       vse32.v  v4, (a1)
///       slli t1, t0, 2 ; add a1, a1, t1 ; sub a0, a0, t0
///       bne a0, x0, loop
///       ecall
/// ```
fn map_strip_program(op: VAluOp) -> Program {
    Program::new(
        "map_strip",
        vec![
            Instr::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E32, Lmul::M2),
            },
            Instr::VLoad {
                eew: Sew::E32,
                vd: v(4),
                rs1: x(11),
                vm: true,
            },
            Instr::VOpVX {
                op,
                vd: v(4),
                vs2: v(4),
                rs1: x(12),
                vm: true,
            },
            Instr::VStore {
                eew: Sew::E32,
                vs3: v(4),
                rs1: x(11),
                vm: true,
            },
            Instr::OpImm {
                op: AluOp::Sll,
                rd: x(6),
                rs1: x(5),
                imm: 2,
            },
            Instr::Op {
                op: AluOp::Add,
                rd: x(11),
                rs1: x(11),
                rs2: x(6),
            },
            Instr::Op {
                op: AluOp::Sub,
                rd: x(10),
                rs1: x(10),
                rs2: x(5),
            },
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: x(10),
                rs2: x(0),
                offset: -28,
            },
            Instr::Ecall,
        ],
    )
}

const DATA: u64 = 0x1000;
const DATA2: u64 = 0x2000;

fn seed_u32(m: &mut Machine, addr: u64, n: usize) {
    let vals: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    m.mem.write_u32_slice(addr, &vals);
}

#[test]
fn map_strip_loop_fuses_and_matches() {
    // 100 elements, VLEN=256 e32m2 → vl=16 per strip → 7 iterations.
    let p = map_strip_program(VAluOp::Add);
    let mf = three_way(&p, 10_000, |m| {
        m.set_xreg(x(10), 100);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), 7);
        seed_u32(m, DATA, 100);
    });
    assert_eq!(mf.fused_stats.windows, 7, "one window per strip iteration");
    assert_eq!(mf.fused_stats.ops, 7 * 3, "vle+vadd+vse per window");
    // And the arithmetic is actually right, not just consistent.
    let out = mf.mem.read_u32_slice(DATA, 100);
    for (i, &o) in out.iter().enumerate() {
        assert_eq!(o, (i as u32).wrapping_mul(0x9e37_79b9).wrapping_add(7));
    }
}

#[test]
fn map_strip_fuses_for_every_alu_op() {
    use VAluOp::*;
    for op in [
        Add, Sub, Rsub, Minu, Min, Maxu, Max, And, Or, Xor, Sll, Srl, Sra, Mul, Mulh, Mulhu, Divu,
        Div, Remu, Rem,
    ] {
        let p = map_strip_program(op);
        let mf = three_way(&p, 10_000, |m| {
            m.set_xreg(x(10), 37);
            m.set_xreg(x(11), DATA);
            m.set_xreg(x(12), 11);
            seed_u32(m, DATA, 37);
        });
        assert!(mf.fused_stats.windows > 0, "{op:?} strip did not fuse");
    }
}

#[test]
fn map_alu_chain_with_immediates_fuses() {
    // The get_flags shape: vle ; vsrl.vx ; vand.vi 1 ; vse — a 4-op map
    // window with a 2-deep ALU chain mixing vx and vi operands.
    let p = Program::new(
        "flags",
        vec![
            Instr::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
            Instr::VLoad {
                eew: Sew::E32,
                vd: v(8),
                rs1: x(11),
                vm: true,
            },
            Instr::VOpVX {
                op: VAluOp::Srl,
                vd: v(8),
                vs2: v(8),
                rs1: x(12),
                vm: true,
            },
            Instr::VOpVI {
                op: VAluOp::And,
                vd: v(8),
                vs2: v(8),
                imm: 1,
                vm: true,
            },
            Instr::VStore {
                eew: Sew::E32,
                vs3: v(8),
                rs1: x(13),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    let mf = three_way(&p, 1_000, |m| {
        m.set_xreg(x(10), 8);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), 3);
        m.set_xreg(x(13), DATA2);
        seed_u32(m, DATA, 8);
    });
    assert_eq!(mf.fused_stats.windows, 1);
    assert_eq!(mf.fused_stats.ops, 4);
    let out = mf.mem.read_u32_slice(DATA2, 8);
    for (i, &o) in out.iter().enumerate() {
        assert_eq!(o, ((i as u32).wrapping_mul(0x9e37_79b9) >> 3) & 1);
    }
}

#[test]
fn mapvv_window_fuses_and_matches() {
    // build_elem_vv shape: vle a ; vle b ; vadd.vv a,a,b ; vse a.
    let p = Program::new(
        "vv",
        vec![
            Instr::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E64, Lmul::M2),
            },
            Instr::VLoad {
                eew: Sew::E64,
                vd: v(2),
                rs1: x(11),
                vm: true,
            },
            Instr::VLoad {
                eew: Sew::E64,
                vd: v(4),
                rs1: x(12),
                vm: true,
            },
            Instr::VOpVV {
                op: VAluOp::Mul,
                vd: v(2),
                vs2: v(2),
                vs1: v(4),
                vm: true,
            },
            Instr::VStore {
                eew: Sew::E64,
                vs3: v(2),
                rs1: x(13),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    let mf = three_way(&p, 1_000, |m| {
        m.set_xreg(x(10), 6);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), DATA + 0x100);
        m.set_xreg(x(13), DATA2);
        for i in 0..6u64 {
            m.mem.poke(DATA + i * 8, 8, i + 2).unwrap();
            m.mem.poke(DATA + 0x100 + i * 8, 8, i + 10).unwrap();
        }
    });
    assert_eq!(mf.fused_stats.windows, 1);
    assert_eq!(mf.fused_stats.ops, 4);
    for i in 0..6u64 {
        assert_eq!(mf.mem.peek(DATA2 + i * 8, 8).unwrap(), (i + 2) * (i + 10));
    }
}

#[test]
fn scan_step_ladder_fuses_and_matches() {
    // The paper's intra-register scan ladder: repeat (vmv fill ; vslideup ;
    // vop.vv) with doubling offsets — each triple is one ScanStep window.
    let mut instrs = vec![
        Instr::Vsetvli {
            rd: x(5),
            rs1: x(10),
            vtype: VType::new(Sew::E32, Lmul::M1),
        },
        Instr::VLoad {
            eew: Sew::E32,
            vd: v(1),
            rs1: x(11),
            vm: true,
        },
    ];
    for off in [1u8, 2, 4] {
        instrs.push(Instr::VMvVX {
            vd: v(2),
            rs1: x(0),
        });
        instrs.push(Instr::VSlideUpVI {
            vd: v(2),
            vs2: v(1),
            uimm: off,
            vm: true,
        });
        instrs.push(Instr::VOpVV {
            op: VAluOp::Add,
            vd: v(1),
            vs2: v(1),
            vs1: v(2),
            vm: true,
        });
    }
    instrs.push(Instr::VStore {
        eew: Sew::E32,
        vs3: v(1),
        rs1: x(12),
        vm: true,
    });
    instrs.push(Instr::Ecall);
    let p = Program::new("scan_ladder", instrs);
    let mf = three_way(&p, 1_000, |m| {
        m.set_xreg(x(10), 8);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), DATA2);
        m.mem.write_u32_slice(DATA, &[1, 2, 3, 4, 5, 6, 7, 8]);
    });
    assert_eq!(mf.fused_stats.windows, 3, "three scan-step triples");
    assert_eq!(mf.fused_stats.ops, 9);
    // An 8-lane +-scan of 1..=8 is the triangular numbers.
    assert_eq!(
        mf.mem.read_u32_slice(DATA2, 8),
        vec![1, 3, 6, 10, 15, 21, 28, 36]
    );
}

#[test]
fn scan_step_with_register_offset_and_vx_fill_fuses() {
    // Same ladder but with the vmv.v.x fill carrying a live value (segmented
    // scan identity) and the slide offset in a register, like the lowered
    // kernels use for VL-dependent offsets.
    let p = Program::new(
        "scan_vx",
        vec![
            Instr::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E16, Lmul::M2),
            },
            Instr::VLoad {
                eew: Sew::E16,
                vd: v(2),
                rs1: x(11),
                vm: true,
            },
            Instr::VMvVX {
                vd: v(6),
                rs1: x(14),
            },
            Instr::VSlideUpVX {
                vd: v(6),
                vs2: v(2),
                rs1: x(15),
                vm: true,
            },
            Instr::VOpVV {
                op: VAluOp::Max,
                vd: v(2),
                vs2: v(2),
                vs1: v(6),
                vm: true,
            },
            Instr::VStore {
                eew: Sew::E16,
                vs3: v(2),
                rs1: x(12),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    let mf = three_way(&p, 1_000, |m| {
        m.set_xreg(x(10), 12);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), DATA2);
        m.set_xreg(x(14), 5); // fill value
        m.set_xreg(x(15), 2); // slide offset
        for i in 0..12u64 {
            m.mem.poke(DATA + i * 2, 2, (i * 3) % 11).unwrap();
        }
    });
    assert!(mf.fused_stats.windows >= 1, "scan step did not fuse");
}

#[test]
fn whole_register_chain_fuses_and_matches() {
    // Spill/fill shape: two whole-register moves back to back.
    let p = Program::new(
        "whole",
        vec![
            Instr::VLoadWhole {
                nregs: 2,
                vd: v(2),
                rs1: x(11),
            },
            Instr::VStoreWhole {
                nregs: 2,
                vs3: v(2),
                rs1: x(12),
            },
            Instr::VLoadWhole {
                nregs: 4,
                vd: v(4),
                rs1: x(12),
            },
            Instr::Ecall,
        ],
    );
    let mf = three_way(&p, 1_000, |m| {
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), DATA2);
        seed_u32(m, DATA, 64);
        seed_u32(m, DATA2, 64);
    });
    assert_eq!(mf.fused_stats.windows, 1);
    assert_eq!(mf.fused_stats.ops, 3);
}

#[test]
fn guard_trap_inside_window_matches_per_op_execution() {
    // A guard page in the middle of the store range: the bulk precheck must
    // decline (without mutating anything) and the per-op fallback must
    // reproduce the legacy trap exactly — same error, same partially
    // written state on all three engines.
    let p = map_strip_program(VAluOp::Add);
    let mf = three_way(&p, 10_000, |m| {
        m.set_xreg(x(10), 100);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), 1);
        seed_u32(m, DATA, 100);
        // 100 e32 elements span [DATA, DATA+400); guard the middle.
        m.mem.add_guard(DATA + 200..DATA + 204);
    });
    // 64-byte strips: strips 0–2 precede the guard and fuse; the strip
    // whose store range overlaps the guard must decline and trap per-op.
    assert_eq!(
        mf.fused_stats.windows, 3,
        "only the strips before the guarded range may fuse"
    );
}

#[test]
fn oob_base_inside_window_matches_per_op_execution() {
    let p = map_strip_program(VAluOp::Xor);
    let mf = three_way(&p, 10_000, |m| {
        m.set_xreg(x(10), 64);
        // Base so close to the top of memory that a later strip runs off
        // the end — the trap byte address must match legacy exactly.
        m.set_xreg(x(11), (1 << 16) - 100);
        m.set_xreg(x(12), 3);
    });
    assert!(
        mf.fused_stats.windows >= 1,
        "in-bounds strips before the trap should still fuse"
    );
}

#[test]
fn vill_window_falls_back_identically() {
    // No vsetvli: vtype is vill, the kernel-cache lookup fails, and the
    // per-op fallback raises the same trap as legacy.
    let p = Program::new(
        "vill",
        vec![
            Instr::VLoad {
                eew: Sew::E32,
                vd: v(4),
                rs1: x(11),
                vm: true,
            },
            Instr::VOpVX {
                op: VAluOp::Add,
                vd: v(4),
                vs2: v(4),
                rs1: x(12),
                vm: true,
            },
            Instr::VStore {
                eew: Sew::E32,
                vs3: v(4),
                rs1: x(11),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    let mf = three_way(&p, 100, |m| {
        m.set_xreg(x(11), DATA);
    });
    assert_eq!(mf.fused_stats.windows, 0);
}

#[test]
fn eew_mismatch_falls_back_identically() {
    // vtype says e32 but the loads are vle16: the monomorphized kernel's
    // EEW precondition fails and the ops run (and trap or succeed) per-op.
    let p = Program::new(
        "eew_mismatch",
        vec![
            Instr::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
            Instr::VLoad {
                eew: Sew::E16,
                vd: v(4),
                rs1: x(11),
                vm: true,
            },
            Instr::VOpVX {
                op: VAluOp::Add,
                vd: v(4),
                vs2: v(4),
                rs1: x(12),
                vm: true,
            },
            Instr::VStore {
                eew: Sew::E16,
                vs3: v(4),
                rs1: x(11),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    let mf = three_way(&p, 100, |m| {
        m.set_xreg(x(10), 4);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), 9);
        seed_u32(m, DATA, 8);
    });
    assert_eq!(mf.fused_stats.windows, 0);
}

#[test]
fn overlapping_slide_registers_fall_back() {
    // vslideup with vd == vs2 is an illegal overlap the per-op path traps
    // on; the scan-step matcher rejects it at detection or the kernel
    // declines — either way all engines agree.
    let p = Program::new(
        "overlap",
        vec![
            Instr::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
            Instr::VMvVX {
                vd: v(2),
                rs1: x(0),
            },
            Instr::VSlideUpVI {
                vd: v(2),
                vs2: v(2),
                uimm: 1,
                vm: true,
            },
            Instr::VOpVV {
                op: VAluOp::Add,
                vd: v(2),
                vs2: v(2),
                vs1: v(2),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    three_way(&p, 100, |m| {
        m.set_xreg(x(10), 4);
    });
}

#[test]
fn vl_zero_window_is_exact() {
    // AVL = 0: vl = 0, every window op is a no-op that must still retire
    // (and must not touch memory even when the base address is garbage).
    let p = map_strip_program(VAluOp::Add);
    // The strip loop with a0=0 never enters the body; use a straight-line
    // variant instead.
    let straight = Program::new(
        "vl0",
        p.instrs[..4] // vsetvli ; vle ; vadd ; vse
            .iter()
            .copied()
            .chain([Instr::Ecall])
            .collect::<Vec<_>>(),
    );
    let mf = three_way(&straight, 100, |m| {
        m.set_xreg(x(10), 0);
        m.set_xreg(x(11), u64::MAX - 3); // wild base: untouched at vl=0
        m.set_xreg(x(12), 7);
    });
    assert_eq!(mf.fused_stats.windows, 1, "vl=0 window still fuses");
}

#[test]
fn fuel_exhaustion_mid_window_is_exact() {
    // At every fuel value — including ones that land inside a window — the
    // three engines must agree on the error, the stop point, and all state.
    let p = map_strip_program(VAluOp::Add);
    let plan = CompiledPlan::compile(p.clone());
    for fuel in 0..40 {
        let seed = |m: &mut Machine| {
            m.set_xreg(x(10), 48);
            m.set_xreg(x(11), DATA);
            m.set_xreg(x(12), 5);
            seed_u32(m, DATA, 48);
        };
        let mut ml = machine();
        let mut mp = machine();
        let mut mf = machine();
        seed(&mut ml);
        seed(&mut mp);
        seed(&mut mf);
        let rl = ml.run_legacy(&p, fuel);
        let rp = mp.run_plan(&plan, fuel);
        let rf = mf.run_fused(&plan, fuel);
        assert_eq!(rp, rl, "plan vs legacy at fuel {fuel}");
        assert_eq!(rf, rl, "fused vs legacy at fuel {fuel}");
        assert_same_state(&mp, &ml);
        assert_same_state(&mf, &ml);
    }
}

/// Event recorder comparing full retire streams, including the memory
/// footprint the cost model consumes.
#[derive(Default)]
struct Rec(Vec<(u64, u64, String, u32, Option<rvv_isa::VType>, String)>);

impl TraceSink for Rec {
    fn retire(&mut self, e: &RetireEvent<'_>) {
        self.0.push((
            e.seq,
            e.pc,
            e.instr.to_string(),
            e.vl,
            e.vtype,
            format!("{:?}", e.mem),
        ));
    }
}

#[test]
fn fused_trace_stream_is_byte_identical_to_plan_and_legacy() {
    let p = map_strip_program(VAluOp::Add);
    let plan = CompiledPlan::compile(p.clone());
    let seed = |m: &mut Machine| {
        m.set_xreg(x(10), 40);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), 2);
        seed_u32(m, DATA, 40);
    };
    let mut ml = machine();
    let mut mp = machine();
    let mut mf = machine();
    seed(&mut ml);
    seed(&mut mp);
    seed(&mut mf);
    let mut tl = Rec::default();
    let mut tp = Rec::default();
    let mut tf = Rec::default();
    ml.run_legacy_traced(&p, 10_000, &mut tl).unwrap();
    mp.run_plan_traced(&plan, 10_000, &mut tp).unwrap();
    mf.run_fused_traced(&plan, 10_000, &mut tf).unwrap();
    assert!(mf.fused_stats.windows > 0, "traced run must fuse");
    assert_eq!(tp.0, tl.0, "plan vs legacy trace");
    assert_eq!(tf.0, tl.0, "fused vs legacy trace");
    assert_same_state(&mf, &ml);
}

#[test]
fn fused_resume_from_plan_snapshot_is_exact() {
    // Pause a plan-tier run mid-program via fuel, snapshot, restore into a
    // fresh machine, and finish on the fused tier: final state must match
    // an uninterrupted legacy run. (The core-level checkpoint tests cover
    // the full Session framing; this pins the sim-level contract.)
    let p = map_strip_program(VAluOp::Add);
    let plan = CompiledPlan::compile(p.clone());
    let seed = |m: &mut Machine| {
        m.set_xreg(x(10), 64);
        m.set_xreg(x(11), DATA);
        m.set_xreg(x(12), 3);
        seed_u32(m, DATA, 64);
    };
    let mut whole = machine();
    seed(&mut whole);
    whole.run_legacy(&p, 100_000).unwrap();

    for pause_fuel in [1u64, 5, 11, 17] {
        let mut m1 = machine();
        seed(&mut m1);
        assert!(m1.run_plan(&plan, pause_fuel).is_err(), "expect pause");
        let snap = m1.snapshot();
        let mut m2 = machine();
        m2.restore(&snap);
        m2.run_fused_from(&plan, 100_000, m2.stop_pc()).unwrap();
        assert_same_state(&m2, &whole);
        // And the reverse hand-off: fused pause → plan resume.
        let mut m3 = machine();
        seed(&mut m3);
        assert!(m3.run_fused(&plan, pause_fuel).is_err(), "expect pause");
        let snap = m3.snapshot();
        let mut m4 = machine();
        m4.restore(&snap);
        m4.run_plan_from(&plan, 100_000, m4.stop_pc()).unwrap();
        assert_same_state(&m4, &whole);
    }
}

#[test]
fn fused_window_count_is_stable_for_kernel_shapes() {
    // The fusion table is a static property of the program; pin the counts
    // the coverage golden (crates/bench) relies on.
    let strip = CompiledPlan::compile(map_strip_program(VAluOp::Add));
    assert_eq!(strip.fused_window_count(), 1);
}
