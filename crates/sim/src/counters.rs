//! Dynamic instruction counters — the paper's performance metric.
//!
//! The paper evaluates on Spike, which is functional (not cycle-accurate),
//! and uses *dynamic instruction count* as the figure of merit. [`Counters`]
//! reproduces that: every architecturally retired instruction counts exactly
//! one, whether scalar or vector, and independent of LMUL (an LMUL=8
//! `vadd.vv` retires as one instruction, exactly as Spike counts it).
//! A per-[`InstrClass`] histogram lets benches attribute counts (e.g. how
//! much of an LMUL=8 segmented scan is spill memory traffic).

use rvv_isa::{Instr, InstrClass};
use std::fmt;

/// Retired-instruction counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    total: u64,
    by_class: [u64; InstrClass::ALL.len()],
}

impl Counters {
    /// Fresh, zeroed counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Record one retired instruction.
    #[inline]
    pub fn retire(&mut self, instr: &Instr) {
        self.retire_class(InstrClass::of(instr));
    }

    /// Record one retired instruction whose class is already known — the
    /// pre-decoded execution plan computes every instruction's class once at
    /// compile time, so the per-retire `InstrClass::of` match disappears
    /// from the hot loop. Must be fed the same class `InstrClass::of` would
    /// return, or the histogram diverges from the legacy path.
    #[inline]
    pub fn retire_class(&mut self, class: InstrClass) {
        self.total += 1;
        self.by_class[class.index()] += 1;
    }

    /// Total dynamic instruction count.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one class.
    #[inline]
    pub fn class(&self, c: InstrClass) -> u64 {
        self.by_class[c.index()]
    }

    /// Sum of all vector classes (everything the V extension added).
    pub fn vector_total(&self) -> u64 {
        [
            InstrClass::VectorCfg,
            InstrClass::VectorAlu,
            InstrClass::VectorMem,
            InstrClass::VectorMask,
            InstrClass::VectorPerm,
            InstrClass::VectorRed,
        ]
        .iter()
        .map(|&c| self.class(c))
        .sum()
    }

    /// Sum of all scalar classes.
    pub fn scalar_total(&self) -> u64 {
        self.total - self.vector_total()
    }

    /// Iterate over `(class, count)` for every class, zero counts included,
    /// in [`InstrClass::ALL`] order — the machine-readable companion to the
    /// `Display` impl.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, u64)> + '_ {
        InstrClass::ALL.iter().map(|&c| (c, self.class(c)))
    }

    /// Serialize as a JSON object:
    /// `{"total":N,"scalar":N,"vector":N,"classes":{"<label>":N,...}}`.
    /// Class keys are [`InstrClass::label`] strings; every class appears,
    /// so consumers need no presence checks. Hand-rolled (labels are known
    /// to need no escaping) to keep the simulator dependency-free.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"total\":{},\"scalar\":{},\"vector\":{},\"classes\":{{",
            self.total(),
            self.scalar_total(),
            self.vector_total()
        );
        for (i, (c, n)) in self.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", c.label(), n));
        }
        s.push_str("}}");
        s
    }

    /// Rebuild counters from a per-class histogram in [`InstrClass::ALL`]
    /// order (the shape [`Counters::iter`] yields). The total is derived
    /// from the classes — an invariant `retire_class` maintains — so a
    /// deserialized counter set cannot carry an inconsistent total.
    ///
    /// # Panics
    /// If `counts` does not have one entry per class.
    pub fn from_class_counts(counts: &[u64]) -> Counters {
        assert_eq!(
            counts.len(),
            InstrClass::ALL.len(),
            "one count per instruction class"
        );
        let mut by_class = [0u64; InstrClass::ALL.len()];
        by_class.copy_from_slice(counts);
        Counters {
            total: counts.iter().sum(),
            by_class,
        }
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        *self = Counters::default();
    }

    /// Accumulate another counter set into this one, class by class. The
    /// batch engine uses this to fold per-worker counters into a sweep-wide
    /// total; addition is commutative, so the merged result is independent
    /// of worker scheduling.
    pub fn merge(&mut self, other: &Counters) {
        self.total += other.total;
        for (a, b) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            *a += *b;
        }
    }

    /// Difference (`self - earlier`), class by class. Panics in debug builds
    /// if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &Counters) -> Counters {
        let mut by_class = [0u64; InstrClass::ALL.len()];
        for (i, b) in by_class.iter_mut().enumerate() {
            *b = self.by_class[i] - earlier.by_class[i];
        }
        Counters {
            total: self.total - earlier.total,
            by_class,
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {}", self.total)?;
        for c in InstrClass::ALL {
            let n = self.class(c);
            if n > 0 {
                writeln!(f, "  {:12} {}", c.label(), n)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvv_isa::{AluOp, Sew, VReg, XReg};

    #[test]
    fn retire_updates_total_and_class() {
        let mut c = Counters::new();
        c.retire(&Instr::Ecall);
        c.retire(&Instr::OpImm {
            op: AluOp::Add,
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            imm: 0,
        });
        c.retire(&Instr::VLoad {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            vm: true,
        });
        assert_eq!(c.total(), 3);
        assert_eq!(c.class(InstrClass::ScalarCtrl), 1);
        assert_eq!(c.class(InstrClass::ScalarAlu), 1);
        assert_eq!(c.class(InstrClass::VectorMem), 1);
        assert_eq!(c.vector_total(), 1);
        assert_eq!(c.scalar_total(), 2);
    }

    #[test]
    fn iter_and_json_export() {
        let mut c = Counters::new();
        c.retire(&Instr::Ecall);
        c.retire(&Instr::VLoad {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            vm: true,
        });
        // iter covers every class once, sums to total.
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs.len(), InstrClass::ALL.len());
        assert_eq!(pairs.iter().map(|&(_, n)| n).sum::<u64>(), c.total());
        let json = c.to_json();
        assert!(json.starts_with("{\"total\":2,"), "{json}");
        assert!(json.contains("\"vector\":1"), "{json}");
        assert!(
            json.contains(&format!("\"{}\":1", InstrClass::VectorMem.label())),
            "{json}"
        );
        // Crude structural sanity: balanced braces, no trailing comma.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",}"), "{json}");
    }

    #[test]
    fn merge_adds_class_by_class() {
        let mut a = Counters::new();
        a.retire(&Instr::Ecall);
        let mut b = Counters::new();
        b.retire(&Instr::Ecall);
        b.retire(&Instr::VLoad {
            eew: Sew::E32,
            vd: VReg::new(8),
            rs1: XReg::new(10),
            vm: true,
        });
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.class(InstrClass::ScalarCtrl), 2);
        assert_eq!(a.class(InstrClass::VectorMem), 1);
    }

    #[test]
    fn since_subtracts() {
        let mut c = Counters::new();
        c.retire(&Instr::Ecall);
        let snap = c.clone();
        c.retire(&Instr::Ecall);
        c.retire(&Instr::Ebreak);
        let d = c.since(&snap);
        assert_eq!(d.total(), 2);
        assert_eq!(d.class(InstrClass::ScalarCtrl), 2);
    }
}
