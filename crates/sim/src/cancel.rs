//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, clonable flag a supervisor (deadline
//! watchdog, shutdown handler, client-disconnect detector) raises from
//! another thread. The machine never polls the clock itself: the token is
//! consulted at the same per-instruction boundary where a
//! [`FaultHook`](crate::FaultHook) runs, once per retired instruction in
//! retirement order, identically in every engine tier. A run that observes
//! the token cancelled traps with [`SimError::Cancelled`](crate::SimError)
//! carrying the boundary ordinal, so partial progress (retired count,
//! counters) is deterministic for a deterministic trip point.
//!
//! Two trip modes:
//!
//! * [`CancelToken::new`] — trips only when [`cancel`](CancelToken::cancel)
//!   is called (wall-clock deadlines, shutdown). Inherently timing
//!   dependent; digests built from cancelled runs must quarantine the
//!   boundary ordinal.
//! * [`CancelToken::after_checks`] — trips itself on the nth consultation.
//!   Fully deterministic; this is how the cross-tier parity tests pin a
//!   cancellation to an exact instruction boundary on Plan, Legacy, and
//!   Fused alike.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Deterministic trip point: consultation ordinal at which the token
    /// cancels itself. 0 = disabled.
    trip_at: AtomicU64,
    /// Total consultations so far (across clones — one token is one run's
    /// budget when `trip_at` is armed).
    checks: AtomicU64,
}

/// A clonable cancellation flag checked cooperatively at instruction
/// boundaries. All clones share state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that cancels only when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that cancels itself on the `n`th consultation (1-based):
    /// the first `n - 1` checks pass, the `n`th and all later ones trip.
    /// `n = 0` is clamped to 1 (cancelled at the first boundary).
    pub fn after_checks(n: u64) -> Self {
        let t = Self::default();
        t.inner.trip_at.store(n.max(1), Ordering::Relaxed);
        t
    }

    /// Raise the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has the flag been raised? A peek — does not count as a
    /// consultation, so it never advances an [`after_checks`] trip point.
    ///
    /// [`after_checks`]: Self::after_checks
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Consult the token at an instruction boundary: counts the check,
    /// trips a deterministic [`after_checks`](Self::after_checks) point if
    /// one is armed, and returns whether the run should stop.
    pub fn check(&self) -> bool {
        let n = self.inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let trip = self.inner.trip_at.load(Ordering::Relaxed);
        if trip != 0 && n >= trip {
            self.cancel();
        }
        self.is_cancelled()
    }

    /// How many consultations have happened so far.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.check());
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.check());
        assert!(t.check(), "cancel is sticky");
    }

    #[test]
    fn after_checks_trips_on_exact_ordinal() {
        let t = CancelToken::after_checks(3);
        assert!(!t.check());
        assert!(!t.check());
        assert!(!t.is_cancelled(), "peek must not trip");
        assert!(t.check(), "third consultation trips");
        assert!(t.is_cancelled());
        assert_eq!(t.checks(), 3);
    }

    #[test]
    fn after_zero_clamps_to_first_boundary() {
        let t = CancelToken::after_checks(0);
        assert!(t.check());
    }
}
