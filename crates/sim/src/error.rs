//! Simulator error type.
//!
//! Everything the machine can trap on is an explicit, testable error — the
//! failure-injection integration tests drive each of these paths.

use rvv_isa::{Lmul, VReg};
use std::fmt;

/// A trap raised while executing an instruction or running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A vector instruction executed while `vtype` is ill-formed (no
    /// successful `vsetvli` yet, or an illegal configuration was requested).
    Vill,
    /// A vector operand register is not aligned to the current LMUL group
    /// size (e.g. `v3` used as a group base at LMUL=4).
    MisalignedGroup {
        /// The offending register.
        reg: VReg,
        /// The LMUL in effect.
        lmul: Lmul,
    },
    /// A destination group overlaps a source group in a way the ISA forbids
    /// (`vslideup`, `vrgather`, `vcompress`, `viota`).
    OverlapConstraint {
        /// Which instruction family raised it.
        what: &'static str,
    },
    /// A memory access fell outside the machine's memory.
    MemOutOfBounds {
        /// Byte address of the start of the access.
        addr: u64,
        /// Access length in bytes.
        len: u64,
        /// Memory size in bytes.
        size: u64,
    },
    /// A branch or jump targeted an address that is not a valid instruction
    /// boundary within the running program.
    BadControlFlow {
        /// The target byte address.
        target: u64,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// PC of the `ebreak`.
        pc: u64,
    },
    /// The run loop's instruction budget was exhausted — almost always an
    /// infinite loop in a generated kernel.
    FuelExhausted {
        /// The budget that was exceeded.
        fuel: u64,
    },
    /// A vector memory op used an element width whose EMUL would exceed 8
    /// registers or otherwise cannot be realized.
    UnsupportedEmul {
        /// Description of the violation.
        what: &'static str,
    },
    /// The program wrote to a guard region (buffer under/overrun detection
    /// used by tests).
    GuardHit {
        /// Byte address of the faulting access.
        addr: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Vill => write!(f, "vector instruction executed with vill set"),
            SimError::MisalignedGroup { reg, lmul } => {
                write!(f, "register {reg} is not aligned for LMUL {lmul}")
            }
            SimError::OverlapConstraint { what } => {
                write!(f, "illegal destination/source overlap in {what}")
            }
            SimError::MemOutOfBounds { addr, len, size } => write!(
                f,
                "memory access [{addr:#x}, {:#x}) outside memory of {size:#x} bytes",
                addr + len
            ),
            SimError::BadControlFlow { target } => {
                write!(f, "control flow to invalid target {target:#x}")
            }
            SimError::Breakpoint { pc } => write!(f, "ebreak at pc {pc:#x}"),
            SimError::FuelExhausted { fuel } => {
                write!(f, "instruction budget of {fuel} exhausted")
            }
            SimError::UnsupportedEmul { what } => write!(f, "unsupported EMUL: {what}"),
            SimError::GuardHit { addr } => write!(f, "guard region hit at {addr:#x}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulator result alias.
pub type SimResult<T> = Result<T, SimError>;
