//! Simulator error type.
//!
//! Everything the machine can trap on is an explicit, testable error — the
//! failure-injection integration tests drive each of these paths.

use rvv_isa::{Lmul, VReg};
use std::fmt;

/// A trap raised while executing an instruction or running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A vector instruction executed while `vtype` is ill-formed (no
    /// successful `vsetvli` yet, or an illegal configuration was requested).
    Vill,
    /// A vector operand register is not aligned to the current LMUL group
    /// size (e.g. `v3` used as a group base at LMUL=4).
    MisalignedGroup {
        /// The offending register.
        reg: VReg,
        /// The LMUL in effect.
        lmul: Lmul,
    },
    /// A destination group overlaps a source group in a way the ISA forbids
    /// (`vslideup`, `vrgather`, `vcompress`, `viota`).
    OverlapConstraint {
        /// Which instruction family raised it.
        what: &'static str,
    },
    /// A memory access fell outside the machine's memory.
    MemOutOfBounds {
        /// Byte address of the start of the access.
        addr: u64,
        /// Access length in bytes.
        len: u64,
        /// Memory size in bytes.
        size: u64,
    },
    /// A branch or jump targeted an address that is not a valid instruction
    /// boundary within the running program.
    BadControlFlow {
        /// The target byte address.
        target: u64,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// PC of the `ebreak`.
        pc: u64,
    },
    /// The run loop's instruction budget was exhausted — almost always an
    /// infinite loop in a generated kernel.
    FuelExhausted {
        /// The budget that was exceeded.
        fuel: u64,
    },
    /// A vector memory op used an element width whose EMUL would exceed 8
    /// registers or otherwise cannot be realized.
    UnsupportedEmul {
        /// Description of the violation.
        what: &'static str,
    },
    /// The program wrote to a guard region (buffer under/overrun detection
    /// used by tests).
    GuardHit {
        /// Byte address of the faulting access.
        addr: u64,
    },
    /// A fetched word does not decode to an instruction in the modelled
    /// subset — a reserved opcode, or an encoding corrupted in flight
    /// (see `rvv-fault`). Real hardware raises an illegal-instruction
    /// exception here; we trap with the exact word so the failure is
    /// reproducible.
    IllegalInstruction {
        /// PC of the undecodable fetch.
        pc: u64,
        /// The 32-bit word that failed to decode.
        encoding: u32,
    },
    /// A fault-injection hook forced this trap (see `rvv-fault`). Never
    /// raised by ordinary execution — only when a `FaultHook` is attached.
    InjectedFault {
        /// Which injection point fired (e.g. `"read"`, `"write"`,
        /// `"fuel"`).
        what: &'static str,
        /// The 1-based ordinal of the access/instruction the plan armed
        /// (for `"fuel"`, the injected instruction budget).
        seq: u64,
    },
    /// A cooperative [`CancelToken`](crate::CancelToken) tripped at an
    /// instruction boundary — the run was asked to stop (deadline expired,
    /// client went away, shutdown in progress). Like `InjectedFault`, never
    /// raised by ordinary execution. Because the token is consulted at the
    /// same retirement-order boundary in every engine tier, the boundary
    /// ordinal `seq` is identical across Plan, Legacy, and Fused for the
    /// same deterministic trip point.
    Cancelled {
        /// The 1-based ordinal of the instruction boundary where the token
        /// was observed cancelled.
        seq: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Vill => write!(f, "vector instruction executed with vill set"),
            SimError::MisalignedGroup { reg, lmul } => {
                write!(f, "register {reg} is not aligned for LMUL {lmul}")
            }
            SimError::OverlapConstraint { what } => {
                write!(f, "illegal destination/source overlap in {what}")
            }
            // `addr + len` can exceed u64::MAX for wild pointers (that is
            // exactly why the access trapped) — saturate rather than
            // overflow inside the error formatter.
            SimError::MemOutOfBounds { addr, len, size } => write!(
                f,
                "memory access [{addr:#x}, {:#x}) outside memory of {size:#x} bytes",
                addr.saturating_add(*len)
            ),
            SimError::BadControlFlow { target } => {
                write!(f, "control flow to invalid target {target:#x}")
            }
            SimError::Breakpoint { pc } => write!(f, "ebreak at pc {pc:#x}"),
            SimError::FuelExhausted { fuel } => {
                write!(f, "instruction budget of {fuel} exhausted")
            }
            SimError::UnsupportedEmul { what } => write!(f, "unsupported EMUL: {what}"),
            SimError::GuardHit { addr } => write!(f, "guard region hit at {addr:#x}"),
            SimError::IllegalInstruction { pc, encoding } => {
                write!(f, "illegal instruction {encoding:#010x} at pc {pc:#x}")
            }
            SimError::InjectedFault { what, seq } => {
                write!(f, "injected {what} fault at access {seq}")
            }
            SimError::Cancelled { seq } => {
                write!(f, "cancelled at instruction boundary {seq}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Simulator result alias.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// One sample of every variant. The match in [`display_is_lossless`]
    /// is intentionally exhaustive (no wildcard arm): adding a `SimError`
    /// variant without extending this list is a compile error, which is
    /// what keeps the display/round-trip coverage honest.
    fn samples() -> Vec<SimError> {
        vec![
            SimError::Vill,
            SimError::MisalignedGroup {
                reg: VReg::new(3),
                lmul: Lmul::M4,
            },
            SimError::OverlapConstraint { what: "vslideup" },
            SimError::MemOutOfBounds {
                addr: 0xdead_beef,
                len: 8,
                size: 0x1000,
            },
            SimError::BadControlFlow { target: 0xfeed },
            SimError::Breakpoint { pc: 0x44 },
            SimError::FuelExhausted { fuel: 123_456 },
            SimError::UnsupportedEmul { what: "emul > 8" },
            SimError::GuardHit { addr: 0xabcd },
            SimError::IllegalInstruction {
                pc: 0x10,
                encoding: 0xffff_ffff,
            },
            SimError::InjectedFault {
                what: "read",
                seq: 42,
            },
            SimError::Cancelled { seq: 7 },
        ]
    }

    #[test]
    fn display_is_lossless() {
        for e in samples() {
            let text = e.to_string();
            // Each variant's distinguishing payload must survive into the
            // message — batch failure manifests are built from these.
            match &e {
                SimError::Vill => assert!(text.contains("vill")),
                SimError::MisalignedGroup { reg, lmul } => {
                    assert!(text.contains(&reg.to_string()), "{text}");
                    assert!(text.contains(&lmul.to_string()), "{text}");
                }
                SimError::OverlapConstraint { what } | SimError::UnsupportedEmul { what } => {
                    assert!(text.contains(what), "{text}")
                }
                SimError::MemOutOfBounds { addr, .. } => {
                    assert!(text.contains(&format!("{addr:#x}")), "{text}")
                }
                SimError::BadControlFlow { target } => {
                    assert!(text.contains(&format!("{target:#x}")), "{text}")
                }
                SimError::Breakpoint { pc } => {
                    assert!(text.contains(&format!("{pc:#x}")), "{text}")
                }
                SimError::FuelExhausted { fuel } => {
                    assert!(text.contains(&fuel.to_string()), "{text}")
                }
                SimError::GuardHit { addr } => {
                    assert!(text.contains(&format!("{addr:#x}")), "{text}")
                }
                SimError::IllegalInstruction { pc, encoding } => {
                    assert!(text.contains(&format!("{encoding:#010x}")), "{text}");
                    assert!(text.contains(&format!("{pc:#x}")), "{text}");
                }
                SimError::InjectedFault { what, seq } => {
                    assert!(text.contains(what), "{text}");
                    assert!(text.contains(&seq.to_string()), "{text}");
                }
                SimError::Cancelled { seq } => {
                    assert!(text.contains("cancelled"), "{text}");
                    assert!(text.contains(&seq.to_string()), "{text}");
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_display_never_overflows() {
        // A wild pointer near u64::MAX used to overflow `addr + len` inside
        // the formatter (a panic in debug builds) — the report must render.
        let e = SimError::MemOutOfBounds {
            addr: u64::MAX - 3,
            len: 8,
            size: 0x1000,
        };
        let text = e.to_string();
        assert!(text.contains(&format!("{:#x}", u64::MAX - 3)), "{text}");
        assert!(text.contains(&format!("{:#x}", u64::MAX)), "{text}");
    }
}
