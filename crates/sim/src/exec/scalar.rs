//! RV64IM scalar execution.

use super::Control;
use crate::error::{SimError, SimResult};
use crate::machine::Machine;
use rvv_isa::{AluOp, BranchCond, Instr, MemWidth};

#[allow(clippy::manual_checked_ops)] // div-by-zero yields RISC-V's all-ones, not None
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        // RISC-V division never traps: x/0 = all ones, MIN/-1 = MIN.
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else {
                a.wrapping_div(b) as u64
            }
        }
        AluOp::Divu => {
            if b == 0 {
                u64::MAX
            } else {
                a / b
            }
        }
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn branch_taken(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

/// Pre-resolve one ALU operation to a plain function pointer (the inner
/// match on the constant op folds away). Used by the execution plan so the
/// per-instruction `AluOp` dispatch happens once at compile time.
pub(crate) fn alu_fn(op: AluOp) -> fn(u64, u64) -> u64 {
    match op {
        AluOp::Add => |a, b| alu(AluOp::Add, a, b),
        AluOp::Sub => |a, b| alu(AluOp::Sub, a, b),
        AluOp::Sll => |a, b| alu(AluOp::Sll, a, b),
        AluOp::Slt => |a, b| alu(AluOp::Slt, a, b),
        AluOp::Sltu => |a, b| alu(AluOp::Sltu, a, b),
        AluOp::Xor => |a, b| alu(AluOp::Xor, a, b),
        AluOp::Srl => |a, b| alu(AluOp::Srl, a, b),
        AluOp::Sra => |a, b| alu(AluOp::Sra, a, b),
        AluOp::Or => |a, b| alu(AluOp::Or, a, b),
        AluOp::And => |a, b| alu(AluOp::And, a, b),
        AluOp::Mul => |a, b| alu(AluOp::Mul, a, b),
        AluOp::Mulh => |a, b| alu(AluOp::Mulh, a, b),
        AluOp::Mulhu => |a, b| alu(AluOp::Mulhu, a, b),
        AluOp::Div => |a, b| alu(AluOp::Div, a, b),
        AluOp::Divu => |a, b| alu(AluOp::Divu, a, b),
        AluOp::Rem => |a, b| alu(AluOp::Rem, a, b),
        AluOp::Remu => |a, b| alu(AluOp::Remu, a, b),
    }
}

/// Pre-resolve one branch condition to a predicate function pointer.
pub(crate) fn branch_fn(cond: BranchCond) -> fn(u64, u64) -> bool {
    match cond {
        BranchCond::Eq => |a, b| branch_taken(BranchCond::Eq, a, b),
        BranchCond::Ne => |a, b| branch_taken(BranchCond::Ne, a, b),
        BranchCond::Lt => |a, b| branch_taken(BranchCond::Lt, a, b),
        BranchCond::Ge => |a, b| branch_taken(BranchCond::Ge, a, b),
        BranchCond::Ltu => |a, b| branch_taken(BranchCond::Ltu, a, b),
        BranchCond::Geu => |a, b| branch_taken(BranchCond::Geu, a, b),
    }
}

impl Machine {
    pub(super) fn exec_scalar(&mut self, pc: u64, instr: &Instr) -> SimResult<Control> {
        use Instr::*;
        Ok(match *instr {
            Lui { rd, imm20 } => {
                self.set_xreg(rd, ((imm20 as i64) << 12) as u64);
                Control::Next
            }
            Auipc { rd, imm20 } => {
                self.set_xreg(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64));
                Control::Next
            }
            Jal { rd, offset } => {
                self.set_xreg(rd, pc.wrapping_add(4));
                Control::Jump(pc.wrapping_add(offset as i64 as u64))
            }
            Jalr { rd, rs1, offset } => {
                let target = self.xreg(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.set_xreg(rd, pc.wrapping_add(4));
                Control::Jump(target)
            }
            Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if branch_taken(cond, self.xreg(rs1), self.xreg(rs2)) {
                    Control::Jump(pc.wrapping_add(offset as i64 as u64))
                } else {
                    Control::Next
                }
            }
            Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.xreg(rs1).wrapping_add(offset as i64 as u64);
                let raw = self.mem.load(addr, width.bytes())?;
                let v = if signed {
                    match width {
                        MemWidth::B => raw as u8 as i8 as i64 as u64,
                        MemWidth::H => raw as u16 as i16 as i64 as u64,
                        MemWidth::W => raw as u32 as i32 as i64 as u64,
                        MemWidth::D => raw,
                    }
                } else {
                    raw
                };
                self.set_xreg(rd, v);
                Control::Next
            }
            Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.xreg(rs1).wrapping_add(offset as i64 as u64);
                self.mem.store(addr, width.bytes(), self.xreg(rs2))?;
                Control::Next
            }
            OpImm { op, rd, rs1, imm } => {
                self.set_xreg(rd, alu(op, self.xreg(rs1), imm as i64 as u64));
                Control::Next
            }
            Op { op, rd, rs1, rs2 } => {
                self.set_xreg(rd, alu(op, self.xreg(rs1), self.xreg(rs2)));
                Control::Next
            }
            Csrr { rd, csr } => {
                let v = match csr {
                    rvv_isa::VCsr::Vl => self.vl() as u64,
                    rvv_isa::VCsr::Vtype => match self.vtype() {
                        Some(t) => t.to_bits(),
                        None => 1 << 63, // vill
                    },
                    rvv_isa::VCsr::Vlenb => self.vlenb() as u64,
                };
                self.set_xreg(rd, v);
                Control::Next
            }
            Ecall => Control::Halt,
            Ebreak => return Err(SimError::Breakpoint { pc }),
            _ => unreachable!("non-scalar instruction routed to exec_scalar"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(alu(AluOp::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i64) as u64, 0), 0);
        assert_eq!(alu(AluOp::Sra, (-8i64) as u64, 2), (-2i64) as u64);
        assert_eq!(alu(AluOp::Srl, 8, 2), 2);
        assert_eq!(alu(AluOp::Sll, 1, 65), 2, "shift amount is mod 64");
        assert_eq!(alu(AluOp::Mulhu, u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(alu(AluOp::Mulh, (-1i64) as u64, (-1i64) as u64), 0);
    }

    #[test]
    fn division_never_traps() {
        assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Divu, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        assert_eq!(
            alu(AluOp::Div, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
        assert_eq!(alu(AluOp::Rem, i64::MIN as u64, (-1i64) as u64), 0);
        assert_eq!(alu(AluOp::Div, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(alu(AluOp::Rem, (-7i64) as u64, 2), (-1i64) as u64);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(BranchCond::Eq, 1, 1));
        assert!(branch_taken(BranchCond::Ne, 1, 2));
        assert!(branch_taken(BranchCond::Lt, (-1i64) as u64, 0));
        assert!(!branch_taken(BranchCond::Ltu, (-1i64) as u64, 0));
        assert!(branch_taken(BranchCond::Geu, (-1i64) as u64, 0));
        assert!(branch_taken(BranchCond::Ge, 0, 0));
    }
}
