//! Vector permutation instructions: slides, register gather, compress.
//!
//! `vslideup` + masked add is the paper's in-register scan ladder (Figures 1
//! and 4); `vcompress`/`vrgather` support alternative formulations used by
//! the ablation benches.
//!
//! Sources are snapshotted before any destination write, so the semantics
//! are well-defined even where the ISA *allows* overlap (e.g. `vslidedown`
//! with `vd == vs2`); where the ISA *forbids* overlap we trap instead.

use crate::error::{SimError, SimResult};
use crate::machine::Machine;
use rvv_isa::{Instr, VReg};

impl Machine {
    fn slide_up(&mut self, vd: VReg, vs2: VReg, offset: u64, vm: bool) -> SimResult<()> {
        self.check_data_op(vd, &[vs2], vm)?;
        let (t, vl) = self.vcfg()?;
        if Machine::groups_overlap(vd, t.lmul.regs(), vs2, t.lmul.regs()) {
            return Err(SimError::OverlapConstraint {
                what: "vslideup vd overlaps vs2",
            });
        }
        let start = offset.min(vl as u64) as u32;
        // Snapshot source elements (vd/vs2 are disjoint, but keep the
        // pattern uniform across the permutation family).
        let src: Vec<u64> = (0..vl.saturating_sub(start))
            .map(|i| self.velem(vs2, i, t.sew))
            .collect();
        for i in start..vl {
            if self.active(vm, i) {
                self.set_velem(vd, i, t.sew, src[(i - start) as usize]);
            }
        }
        Ok(())
    }

    fn slide_down(&mut self, vd: VReg, vs2: VReg, offset: u64, vm: bool) -> SimResult<()> {
        self.check_data_op(vd, &[vs2], vm)?;
        let (t, vl) = self.vcfg()?;
        let vlmax = t.vlmax(self.vlen()) as u64;
        let src: Vec<u64> = (0..vl)
            .map(|i| {
                // checked_add: an offset near u64::MAX is architecturally
                // past VLMAX (reads as 0), not a wrap back into range.
                match (i as u64).checked_add(offset) {
                    Some(j) if j < vlmax => self.velem(vs2, j as u32, t.sew),
                    _ => 0,
                }
            })
            .collect();
        for i in 0..vl {
            if self.active(vm, i) {
                self.set_velem(vd, i, t.sew, src[i as usize]);
            }
        }
        Ok(())
    }

    pub(super) fn exec_vperm(&mut self, instr: &Instr) -> SimResult<()> {
        use Instr::*;
        match *instr {
            VSlideUpVX { vd, vs2, rs1, vm } => {
                let off = self.xreg(rs1);
                self.slide_up(vd, vs2, off, vm)
            }
            VSlideUpVI { vd, vs2, uimm, vm } => self.slide_up(vd, vs2, uimm as u64, vm),
            VSlideDownVX { vd, vs2, rs1, vm } => {
                let off = self.xreg(rs1);
                self.slide_down(vd, vs2, off, vm)
            }
            VSlideDownVI { vd, vs2, uimm, vm } => self.slide_down(vd, vs2, uimm as u64, vm),
            VSlide1Up { vd, vs2, rs1, vm } => {
                self.check_data_op(vd, &[vs2], vm)?;
                let (t, vl) = self.vcfg()?;
                if Machine::groups_overlap(vd, t.lmul.regs(), vs2, t.lmul.regs()) {
                    return Err(SimError::OverlapConstraint {
                        what: "vslide1up vd overlaps vs2",
                    });
                }
                let x = t.sew.truncate(self.xreg(rs1));
                let src: Vec<u64> = (0..vl.saturating_sub(1))
                    .map(|i| self.velem(vs2, i, t.sew))
                    .collect();
                if vl > 0 && self.active(vm, 0) {
                    self.set_velem(vd, 0, t.sew, x);
                }
                for i in 1..vl {
                    if self.active(vm, i) {
                        self.set_velem(vd, i, t.sew, src[(i - 1) as usize]);
                    }
                }
                Ok(())
            }
            VSlide1Down { vd, vs2, rs1, vm } => {
                self.check_data_op(vd, &[vs2], vm)?;
                let (t, vl) = self.vcfg()?;
                let x = t.sew.truncate(self.xreg(rs1));
                let src: Vec<u64> = (1..vl).map(|i| self.velem(vs2, i, t.sew)).collect();
                for i in 0..vl {
                    if self.active(vm, i) {
                        let v = if i + 1 < vl { src[i as usize] } else { x };
                        self.set_velem(vd, i, t.sew, v);
                    }
                }
                Ok(())
            }
            VRGatherVV { vd, vs2, vs1, vm } => {
                self.check_data_op(vd, &[vs2, vs1], vm)?;
                let (t, vl) = self.vcfg()?;
                let regs = t.lmul.regs();
                if Machine::groups_overlap(vd, regs, vs2, regs)
                    || Machine::groups_overlap(vd, regs, vs1, regs)
                {
                    return Err(SimError::OverlapConstraint {
                        what: "vrgather vd overlaps a source",
                    });
                }
                let vlmax = t.vlmax(self.vlen()) as u64;
                let vals: Vec<u64> = (0..vl)
                    .map(|i| {
                        let idx = self.velem(vs1, i, t.sew);
                        if idx < vlmax {
                            self.velem(vs2, idx as u32, t.sew)
                        } else {
                            0
                        }
                    })
                    .collect();
                for i in 0..vl {
                    if self.active(vm, i) {
                        self.set_velem(vd, i, t.sew, vals[i as usize]);
                    }
                }
                Ok(())
            }
            VRGatherVX { vd, vs2, rs1, vm } => {
                self.check_data_op(vd, &[vs2], vm)?;
                let (t, vl) = self.vcfg()?;
                let regs = t.lmul.regs();
                if Machine::groups_overlap(vd, regs, vs2, regs) {
                    return Err(SimError::OverlapConstraint {
                        what: "vrgather vd overlaps vs2",
                    });
                }
                let vlmax = t.vlmax(self.vlen()) as u64;
                let idx = self.xreg(rs1);
                let v = if idx < vlmax {
                    self.velem(vs2, idx as u32, t.sew)
                } else {
                    0
                };
                for i in 0..vl {
                    if self.active(vm, i) {
                        self.set_velem(vd, i, t.sew, v);
                    }
                }
                Ok(())
            }
            VCompress { vd, vs2, vs1 } => {
                let (t, vl) = self.vcfg()?;
                self.check_group(vd, t.lmul)?;
                self.check_group(vs2, t.lmul)?;
                let regs = t.lmul.regs();
                if Machine::groups_overlap(vd, regs, vs2, regs)
                    || Machine::groups_overlap(vd, regs, vs1, 1)
                {
                    return Err(SimError::OverlapConstraint {
                        what: "vcompress vd overlaps a source",
                    });
                }
                let mut j = 0u32;
                for i in 0..vl {
                    if self.mask_bit(vs1, i) {
                        let v = self.velem(vs2, i, t.sew);
                        self.set_velem(vd, j, t.sew, v);
                        j += 1;
                    }
                }
                Ok(())
            }
            _ => unreachable!("non-permutation instruction routed to exec_vperm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use rvv_isa::{Lmul, Sew, VType, XReg};

    fn machine_e32(vl: u32) -> Machine {
        let mut m = Machine::new(MachineConfig {
            vlen: 256,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(10), vl as u64);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
        )
        .unwrap();
        m
    }

    fn set_vec(m: &mut Machine, r: VReg, vals: &[u64]) {
        for (i, &v) in vals.iter().enumerate() {
            m.set_velem(r, i as u32, Sew::E32, v);
        }
    }

    fn get_vec(m: &Machine, r: VReg, n: u32) -> Vec<u64> {
        (0..n).map(|i| m.velem(r, i, Sew::E32)).collect()
    }

    #[test]
    fn slideup_preserves_low_elements() {
        // This is exactly the paper's scan ladder step:
        // y = slideup(zero, x, offset).
        let mut m = machine_e32(8);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4, 5, 6, 7, 8]);
        set_vec(&mut m, VReg::new(2), &[0; 8]); // pre-seeded destination
        m.set_xreg(XReg::new(5), 2);
        m.exec(
            0,
            &Instr::VSlideUpVX {
                vd: VReg::new(2),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(2), 8), vec![0, 0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn slideup_offset_past_vl_writes_nothing() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4]);
        set_vec(&mut m, VReg::new(2), &[9, 9, 9, 9]);
        m.set_xreg(XReg::new(5), 10);
        m.exec(
            0,
            &Instr::VSlideUpVX {
                vd: VReg::new(2),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(2), 4), vec![9, 9, 9, 9]);
    }

    #[test]
    fn slideup_overlap_traps() {
        let mut m = machine_e32(4);
        m.set_xreg(XReg::new(5), 1);
        let r = m.exec(
            0,
            &Instr::VSlideUpVX {
                vd: VReg::new(1),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        );
        assert!(matches!(r, Err(SimError::OverlapConstraint { .. })));
    }

    #[test]
    fn slidedown_reads_past_vl_and_zero_fills() {
        let mut m = machine_e32(4); // VLEN=256 e32 -> vlmax 8
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4, 55, 66, 77, 88]);
        m.set_xreg(XReg::new(5), 3);
        m.exec(
            0,
            &Instr::VSlideDownVX {
                vd: VReg::new(2),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        // Elements beyond vl but below vlmax come from the register;
        // beyond vlmax would be zero.
        assert_eq!(get_vec(&m, VReg::new(2), 4), vec![4, 55, 66, 77]);
        // Slide down by >= vlmax zero-fills everything.
        m.set_xreg(XReg::new(5), 100);
        m.exec(
            0,
            &Instr::VSlideDownVX {
                vd: VReg::new(3),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn slidedown_allows_in_place() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4]);
        m.exec(
            0,
            &Instr::VSlideDownVI {
                vd: VReg::new(1),
                vs2: VReg::new(1),
                uimm: 1,
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(1), 3), vec![2, 3, 4]);
    }

    #[test]
    fn slide1up_and_slide1down() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4]);
        m.set_xreg(XReg::new(5), 99);
        m.exec(
            0,
            &Instr::VSlide1Up {
                vd: VReg::new(2),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(2), 4), vec![99, 1, 2, 3]);
        m.exec(
            0,
            &Instr::VSlide1Down {
                vd: VReg::new(3),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![2, 3, 4, 99]);
    }

    #[test]
    fn rgather_with_oob_index_zero_fills() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[10, 20, 30, 40]);
        set_vec(&mut m, VReg::new(2), &[3, 3, 100, 0]);
        m.exec(
            0,
            &Instr::VRGatherVV {
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![40, 40, 0, 10]);
    }

    #[test]
    fn compress_packs_selected() {
        let mut m = machine_e32(6);
        set_vec(&mut m, VReg::new(1), &[10, 20, 30, 40, 50, 60]);
        set_vec(&mut m, VReg::new(2), &[0; 6]);
        for i in [1u32, 3, 4] {
            m.set_mask_bit(VReg::new(4), i, true);
        }
        m.exec(
            0,
            &Instr::VCompress {
                vd: VReg::new(2),
                vs2: VReg::new(1),
                vs1: VReg::new(4),
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(2), 3), vec![20, 40, 50]);
    }

    #[test]
    fn masked_slide_leaves_inactive() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4]);
        set_vec(&mut m, VReg::new(2), &[9, 9, 9, 9]);
        m.set_mask_bit(VReg::V0, 2, true);
        m.set_xreg(XReg::new(5), 1);
        m.exec(
            0,
            &Instr::VSlideUpVX {
                vd: VReg::new(2),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: false,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(2), 4), vec![9, 9, 2, 9]);
    }
}
