//! Vector memory instructions: unit-stride, strided, indexed (the paper's
//! permutation workhorse `VSUXEI`), whole-register (spill traffic), and mask
//! loads/stores.
//!
//! ## EEW / EMUL
//!
//! Loads and stores carry their own element width (EEW). The effective
//! LMUL of the accessed register group is `EMUL = EEW/SEW × LMUL`; indexed
//! accesses use EEW for the *index* group and SEW for the *data* group. The
//! paper's kernels always use EEW == SEW, but the general rule is modelled
//! (and rejected when EMUL would exceed 8 registers).

use crate::error::{SimError, SimResult};
use crate::machine::Machine;
use rvv_isa::{Instr, Sew, VReg};

impl Machine {
    /// Effective group size in registers for an access of width `eew` under
    /// the current `vtype`, clamped below at 1 register.
    pub(crate) fn emul_regs(&self, eew: Sew) -> SimResult<u32> {
        let (t, _) = self.vcfg()?;
        let (lnum, lden) = t.lmul.fraction();
        let num = eew.bits() * lnum;
        let den = t.sew.bits() * lden;
        if num > 8 * den {
            return Err(SimError::UnsupportedEmul {
                what: "EEW/SEW ratio × LMUL exceeds 8",
            });
        }
        Ok((num / den).max(1))
    }

    pub(crate) fn check_emul_group(&self, reg: VReg, regs: u32) -> SimResult<()> {
        if (reg.num() as u32).is_multiple_of(regs) {
            Ok(())
        } else {
            let (t, _) = self.vcfg()?;
            Err(SimError::MisalignedGroup { reg, lmul: t.lmul })
        }
    }

    pub(super) fn exec_vmem(&mut self, instr: &Instr) -> SimResult<()> {
        use Instr::*;
        match *instr {
            VLoad { eew, vd, rs1, vm } => {
                let regs = self.emul_regs(eew)?;
                self.check_emul_group(vd, regs)?;
                let (_, vl) = self.vcfg()?;
                let base = self.xreg(rs1);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let addr = base.wrapping_add(i as u64 * eew.bytes() as u64);
                        let v = self.mem.load(addr, eew.bytes() as u64)?;
                        self.set_velem(vd, i, eew, v);
                    }
                }
                Ok(())
            }
            VStore { eew, vs3, rs1, vm } => {
                let regs = self.emul_regs(eew)?;
                self.check_emul_group(vs3, regs)?;
                let (_, vl) = self.vcfg()?;
                let base = self.xreg(rs1);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let addr = base.wrapping_add(i as u64 * eew.bytes() as u64);
                        let v = self.velem(vs3, i, eew);
                        self.mem.store(addr, eew.bytes() as u64, v)?;
                    }
                }
                Ok(())
            }
            VLoadStrided {
                eew,
                vd,
                rs1,
                rs2,
                vm,
            } => {
                let regs = self.emul_regs(eew)?;
                self.check_emul_group(vd, regs)?;
                let (_, vl) = self.vcfg()?;
                let base = self.xreg(rs1);
                let stride = self.xreg(rs2);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let addr = base.wrapping_add((i as u64).wrapping_mul(stride));
                        let v = self.mem.load(addr, eew.bytes() as u64)?;
                        self.set_velem(vd, i, eew, v);
                    }
                }
                Ok(())
            }
            VStoreStrided {
                eew,
                vs3,
                rs1,
                rs2,
                vm,
            } => {
                let regs = self.emul_regs(eew)?;
                self.check_emul_group(vs3, regs)?;
                let (_, vl) = self.vcfg()?;
                let base = self.xreg(rs1);
                let stride = self.xreg(rs2);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let addr = base.wrapping_add((i as u64).wrapping_mul(stride));
                        let v = self.velem(vs3, i, eew);
                        self.mem.store(addr, eew.bytes() as u64, v)?;
                    }
                }
                Ok(())
            }
            VLoadIndexed {
                eew,
                ordered: _,
                vd,
                rs1,
                vs2,
                vm,
            } => {
                // Data group: SEW × LMUL; index group: EEW-based EMUL.
                let (t, vl) = self.vcfg()?;
                self.check_group(vd, t.lmul)?;
                let idx_regs = self.emul_regs(eew)?;
                self.check_emul_group(vs2, idx_regs)?;
                let base = self.xreg(rs1);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let off = self.velem(vs2, i, eew);
                        let v = self
                            .mem
                            .load(base.wrapping_add(off), t.sew.bytes() as u64)?;
                        self.set_velem(vd, i, t.sew, v);
                    }
                }
                Ok(())
            }
            VStoreIndexed {
                eew,
                ordered: _,
                vs3,
                rs1,
                vs2,
                vm,
            } => {
                let (t, vl) = self.vcfg()?;
                self.check_group(vs3, t.lmul)?;
                let idx_regs = self.emul_regs(eew)?;
                self.check_emul_group(vs2, idx_regs)?;
                let base = self.xreg(rs1);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let off = self.velem(vs2, i, eew);
                        let v = self.velem(vs3, i, t.sew);
                        self.mem
                            .store(base.wrapping_add(off), t.sew.bytes() as u64, v)?;
                    }
                }
                Ok(())
            }
            VLoadWhole { nregs, vd, rs1 } => {
                // Whole-register ops ignore vtype entirely (they work even
                // under vill) — that is what makes them usable as spill code.
                if !(vd.num() as u32).is_multiple_of(nregs as u32) {
                    return Err(SimError::UnsupportedEmul {
                        what: "whole-register vd not aligned to register count",
                    });
                }
                let base = self.xreg(rs1);
                let vlenb = self.vlenb() as u64;
                for r in 0..nregs {
                    let bytes = self
                        .mem
                        .read_bytes(base + r as u64 * vlenb, vlenb)?
                        .to_vec();
                    self.set_vreg_bytes(VReg::new(vd.num() + r), &bytes);
                }
                Ok(())
            }
            VStoreWhole { nregs, vs3, rs1 } => {
                if !(vs3.num() as u32).is_multiple_of(nregs as u32) {
                    return Err(SimError::UnsupportedEmul {
                        what: "whole-register vs3 not aligned to register count",
                    });
                }
                let base = self.xreg(rs1);
                let vlenb = self.vlenb() as u64;
                for r in 0..nregs {
                    let bytes = self.vreg_bytes(VReg::new(vs3.num() + r)).to_vec();
                    self.mem.write_bytes(base + r as u64 * vlenb, &bytes)?;
                }
                Ok(())
            }
            VLoadMask { vd, rs1 } => {
                let (_, vl) = self.vcfg()?;
                let nbytes = vl.div_ceil(8) as u64;
                let base = self.xreg(rs1);
                let data = self.mem.read_bytes(base, nbytes)?.to_vec();
                for (k, byte) in data.iter().enumerate() {
                    for b in 0..8u32 {
                        let i = k as u32 * 8 + b;
                        if i < vl {
                            self.set_mask_bit(vd, i, byte & (1 << b) != 0);
                        }
                    }
                }
                Ok(())
            }
            VStoreMask { vs3, rs1 } => {
                let (_, vl) = self.vcfg()?;
                let nbytes = vl.div_ceil(8);
                let base = self.xreg(rs1);
                let mut data = vec![0u8; nbytes as usize];
                for i in 0..vl {
                    if self.mask_bit(vs3, i) {
                        data[(i / 8) as usize] |= 1 << (i % 8);
                    }
                }
                self.mem.write_bytes(base, &data)?;
                Ok(())
            }
            _ => unreachable!("non-memory instruction routed to exec_vmem"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use rvv_isa::{Lmul, VType, XReg};

    fn machine_e32(vl: u32) -> Machine {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 65536,
        });
        m.set_xreg(XReg::new(10), vl as u64);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn unit_load_store_roundtrip() {
        let mut m = machine_e32(4);
        m.mem.write_u32_slice(0x100, &[10, 20, 30, 40]);
        m.set_xreg(XReg::new(11), 0x100);
        m.exec(
            0,
            &Instr::VLoad {
                eew: Sew::E32,
                vd: VReg::new(8),
                rs1: XReg::new(11),
                vm: true,
            },
        )
        .unwrap();
        m.set_xreg(XReg::new(12), 0x200);
        m.exec(
            0,
            &Instr::VStore {
                eew: Sew::E32,
                vs3: VReg::new(8),
                rs1: XReg::new(12),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(m.mem.read_u32_slice(0x200, 4), vec![10, 20, 30, 40]);
    }

    #[test]
    fn masked_store_skips_inactive() {
        let mut m = machine_e32(4);
        m.mem.write_u32_slice(0x200, &[9, 9, 9, 9]);
        for i in 0..4 {
            m.set_velem(VReg::new(8), i, Sew::E32, 100 + i as u64);
        }
        m.set_mask_bit(VReg::V0, 1, true);
        m.set_mask_bit(VReg::V0, 2, true);
        m.set_xreg(XReg::new(12), 0x200);
        m.exec(
            0,
            &Instr::VStore {
                eew: Sew::E32,
                vs3: VReg::new(8),
                rs1: XReg::new(12),
                vm: false,
            },
        )
        .unwrap();
        assert_eq!(m.mem.read_u32_slice(0x200, 4), vec![9, 101, 102, 9]);
    }

    #[test]
    fn indexed_store_scatters_byte_offsets() {
        // This is the paper's permute: vsuxei32 with byte offsets.
        let mut m = machine_e32(4);
        for (i, v) in [7u64, 8, 9, 10].iter().enumerate() {
            m.set_velem(VReg::new(8), i as u32, Sew::E32, *v);
        }
        // Destination indices 2,0,3,1 -> byte offsets 8,0,12,4.
        for (i, off) in [8u64, 0, 12, 4].iter().enumerate() {
            m.set_velem(VReg::new(9), i as u32, Sew::E32, *off);
        }
        m.set_xreg(XReg::new(12), 0x300);
        m.exec(
            0,
            &Instr::VStoreIndexed {
                eew: Sew::E32,
                ordered: false,
                vs3: VReg::new(8),
                rs1: XReg::new(12),
                vs2: VReg::new(9),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(m.mem.read_u32_slice(0x300, 4), vec![8, 10, 7, 9]);
    }

    #[test]
    fn indexed_load_gathers() {
        let mut m = machine_e32(3);
        m.mem.write_u32_slice(0x400, &[11, 22, 33, 44]);
        for (i, off) in [12u64, 0, 8].iter().enumerate() {
            m.set_velem(VReg::new(9), i as u32, Sew::E32, *off);
        }
        m.set_xreg(XReg::new(12), 0x400);
        m.exec(
            0,
            &Instr::VLoadIndexed {
                eew: Sew::E32,
                ordered: true,
                vd: VReg::new(8),
                rs1: XReg::new(12),
                vs2: VReg::new(9),
                vm: true,
            },
        )
        .unwrap();
        let got: Vec<u64> = (0..3).map(|i| m.velem(VReg::new(8), i, Sew::E32)).collect();
        assert_eq!(got, vec![44, 11, 33]);
    }

    #[test]
    fn strided_load() {
        let mut m = machine_e32(3);
        m.mem.write_u32_slice(0x500, &[1, 2, 3, 4, 5, 6]);
        m.set_xreg(XReg::new(11), 0x500);
        m.set_xreg(XReg::new(12), 8); // stride: every other u32
        m.exec(
            0,
            &Instr::VLoadStrided {
                eew: Sew::E32,
                vd: VReg::new(8),
                rs1: XReg::new(11),
                rs2: XReg::new(12),
                vm: true,
            },
        )
        .unwrap();
        let got: Vec<u64> = (0..3).map(|i| m.velem(VReg::new(8), i, Sew::E32)).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn whole_register_spill_roundtrip() {
        let mut m = machine_e32(4);
        for i in 0..4 {
            m.set_velem(VReg::new(8), i, Sew::E32, 0xa0 + i as u64);
        }
        m.set_xreg(XReg::new(2), 0x1000);
        m.exec(
            0,
            &Instr::VStoreWhole {
                nregs: 1,
                vs3: VReg::new(8),
                rs1: XReg::new(2),
            },
        )
        .unwrap();
        m.exec(
            0,
            &Instr::VLoadWhole {
                nregs: 1,
                vd: VReg::new(16),
                rs1: XReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(m.vreg_bytes(VReg::new(16)), m.vreg_bytes(VReg::new(8)));
    }

    #[test]
    fn whole_register_works_under_vill() {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(2), 0x100);
        assert!(m.vtype().is_none());
        m.exec(
            0,
            &Instr::VStoreWhole {
                nregs: 2,
                vs3: VReg::new(8),
                rs1: XReg::new(2),
            },
        )
        .unwrap();
        m.exec(
            0,
            &Instr::VLoadWhole {
                nregs: 2,
                vd: VReg::new(10),
                rs1: XReg::new(2),
            },
        )
        .unwrap();
    }

    #[test]
    fn whole_register_alignment_enforced() {
        let mut m = machine_e32(4);
        m.set_xreg(XReg::new(2), 0x100);
        let r = m.exec(
            0,
            &Instr::VLoadWhole {
                nregs: 4,
                vd: VReg::new(6),
                rs1: XReg::new(2),
            },
        );
        assert!(matches!(r, Err(SimError::UnsupportedEmul { .. })));
    }

    #[test]
    fn mask_load_store_roundtrip() {
        let mut m = machine_e32(4);
        for i in [0u32, 3] {
            m.set_mask_bit(VReg::new(4), i, true);
        }
        m.set_xreg(XReg::new(11), 0x600);
        m.exec(
            0,
            &Instr::VStoreMask {
                vs3: VReg::new(4),
                rs1: XReg::new(11),
            },
        )
        .unwrap();
        assert_eq!(m.mem.load(0x600, 1).unwrap(), 0b1001);
        m.exec(
            0,
            &Instr::VLoadMask {
                vd: VReg::new(5),
                rs1: XReg::new(11),
            },
        )
        .unwrap();
        assert!(m.mask_bit(VReg::new(5), 0));
        assert!(!m.mask_bit(VReg::new(5), 1));
        assert!(m.mask_bit(VReg::new(5), 3));
    }

    #[test]
    fn oob_load_traps() {
        let mut m = machine_e32(4);
        m.set_xreg(XReg::new(11), 65536 - 8);
        let r = m.exec(
            0,
            &Instr::VLoad {
                eew: Sew::E32,
                vd: VReg::new(8),
                rs1: XReg::new(11),
                vm: true,
            },
        );
        assert!(matches!(r, Err(SimError::MemOutOfBounds { .. })));
    }

    #[test]
    fn emul_overflow_rejected() {
        // e64 load under e8/m8 vtype: EMUL = 64/8*8 = 64 registers -> trap.
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(10), 4);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E8, Lmul::M8),
            },
        )
        .unwrap();
        let r = m.exec(
            0,
            &Instr::VLoad {
                eew: Sew::E64,
                vd: VReg::new(8),
                rs1: XReg::new(11),
                vm: true,
            },
        );
        assert!(matches!(r, Err(SimError::UnsupportedEmul { .. })));
    }
}
