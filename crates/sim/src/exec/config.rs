//! Vector configuration instructions: `vsetvli`, `vsetivli`, `vsetvl`.
//!
//! `vl` is computed the way Spike does: `vl = min(AVL, VLMAX)`. With
//! `rs1 = x0` and `rd != x0` the AVL is "as large as possible" (`VLMAX`);
//! with both `x0` the configuration changes but `vl` is preserved (and must
//! still be legal — we model the must-not-grow rule by keeping the old `vl`
//! and trapping if it now exceeds `VLMAX`).

use crate::error::{SimError, SimResult};
use crate::machine::Machine;
use rvv_isa::{Instr, VType, XReg};

impl Machine {
    pub(super) fn exec_vconfig(&mut self, instr: &Instr) -> SimResult<()> {
        match *instr {
            Instr::Vsetvli { rd, rs1, vtype } => {
                let avl = if rs1.is_zero() && rd.is_zero() {
                    None
                } else if rs1.is_zero() {
                    Some(u64::MAX)
                } else {
                    Some(self.xreg(rs1))
                };
                self.apply(rd, avl, vtype)
            }
            Instr::Vsetivli { rd, uimm, vtype } => self.apply(rd, Some(uimm as u64), vtype),
            Instr::Vsetvl { rd, rs1, rs2 } => {
                let bits = self.xreg(rs2);
                let vtype = match VType::from_bits(bits) {
                    Some(t) => t,
                    None => {
                        // Illegal vtype sets vill; later vector instructions
                        // trap. `vl` reads as 0.
                        self.set_vcfg(None, 0);
                        self.set_xreg(rd, 0);
                        return Ok(());
                    }
                };
                let avl = if rs1.is_zero() && rd.is_zero() {
                    None
                } else if rs1.is_zero() {
                    Some(u64::MAX)
                } else {
                    Some(self.xreg(rs1))
                };
                self.apply(rd, avl, vtype)
            }
            _ => unreachable!("non-config instruction routed to exec_vconfig"),
        }
    }

    fn apply(&mut self, rd: XReg, avl: Option<u64>, vtype: VType) -> SimResult<()> {
        let vlmax = vtype.vlmax(self.vlen()) as u64;
        if vlmax == 0 {
            // SEW wider than LMUL x VLEN supports (possible with fractional
            // LMUL): the configuration is unsupported here, so vill is set.
            self.set_vcfg(None, 0);
            self.set_xreg(rd, 0);
            return Ok(());
        }
        let vl = match avl {
            Some(avl) => avl.min(vlmax),
            None => {
                // Change vtype, keep vl: legal only if the old vl still fits.
                let old = self.vl() as u64;
                if old > vlmax {
                    return Err(SimError::Vill);
                }
                old
            }
        };
        self.set_vcfg(Some(vtype), vl as u32);
        self.set_xreg(rd, vl);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{Machine, MachineConfig};
    use rvv_isa::{Instr, Lmul, Sew, VType, XReg};

    fn m() -> Machine {
        Machine::new(MachineConfig {
            vlen: 1024,
            mem_bytes: 4096,
        })
    }

    #[test]
    fn vl_is_min_of_avl_and_vlmax() {
        let mut m = m();
        // VLEN=1024, e32, m1 -> VLMAX = 32.
        m.set_xreg(XReg::new(10), 100);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::new(13),
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
        )
        .unwrap();
        assert_eq!(m.vl(), 32);
        assert_eq!(m.xreg(XReg::new(13)), 32);
        // AVL below VLMAX comes back exactly.
        m.set_xreg(XReg::new(10), 13);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::new(13),
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
        )
        .unwrap();
        assert_eq!(m.vl(), 13);
    }

    #[test]
    fn rs1_x0_means_vlmax() {
        let mut m = m();
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::new(13),
                rs1: XReg::ZERO,
                vtype: VType::new(Sew::E32, Lmul::M8),
            },
        )
        .unwrap();
        assert_eq!(m.vl(), 256); // 8 * 1024/32
    }

    #[test]
    fn vsetivli_immediate_avl() {
        let mut m = m();
        m.exec(
            0,
            &Instr::Vsetivli {
                rd: XReg::new(1),
                uimm: 16,
                vtype: VType::new(Sew::E64, Lmul::M1),
            },
        )
        .unwrap();
        assert_eq!(m.vl(), 16);
        assert_eq!(m.vtype().unwrap().sew, Sew::E64);
    }

    #[test]
    fn fractional_lmul_configures() {
        let mut m = m();
        // VLEN=1024, e32, mf2 -> VLMAX = 16.
        m.set_xreg(XReg::new(10), 100);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::new(13),
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::F2),
            },
        )
        .unwrap();
        assert_eq!(m.vl(), 16);
    }

    #[test]
    fn impossible_fractional_config_sets_vill() {
        let mut m = Machine::new(crate::machine::MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(10), 4);
        // e64 at mf8 on VLEN=128: VLMAX = 0 -> vill.
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::new(13),
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E64, Lmul::F8),
            },
        )
        .unwrap();
        assert!(m.vtype().is_none());
        assert_eq!(m.xreg(XReg::new(13)), 0);
    }

    #[test]
    fn csrr_reads_vector_state() {
        use rvv_isa::VCsr;
        let mut m = m();
        // Before any vsetvli: vtype reads as vill (bit 63), vl as 0.
        m.exec(
            0,
            &Instr::Csrr {
                rd: XReg::new(5),
                csr: VCsr::Vtype,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(5)), 1 << 63);
        m.exec(
            0,
            &Instr::Csrr {
                rd: XReg::new(5),
                csr: VCsr::Vlenb,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(5)), 128); // VLEN=1024
        m.set_xreg(XReg::new(10), 13);
        let vt = VType::new(Sew::E32, Lmul::M2);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: vt,
            },
        )
        .unwrap();
        m.exec(
            0,
            &Instr::Csrr {
                rd: XReg::new(6),
                csr: VCsr::Vl,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(6)), 13);
        m.exec(
            0,
            &Instr::Csrr {
                rd: XReg::new(7),
                csr: VCsr::Vtype,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(7)), vt.to_bits());
    }

    #[test]
    fn vsetvl_with_illegal_vtype_sets_vill() {
        let mut m = m();
        m.set_xreg(XReg::new(5), 0b100); // reserved vlmul encoding -> vill
        m.set_xreg(XReg::new(6), 10);
        m.exec(
            0,
            &Instr::Vsetvl {
                rd: XReg::new(7),
                rs1: XReg::new(6),
                rs2: XReg::new(5),
            },
        )
        .unwrap();
        assert!(m.vtype().is_none());
        assert_eq!(m.xreg(XReg::new(7)), 0);
        // Any vector instruction now traps.
        use rvv_isa::{VAluOp, VReg};
        let r = m.exec(
            0,
            &Instr::VOpVV {
                op: VAluOp::Add,
                vd: VReg::new(1),
                vs2: VReg::new(2),
                vs1: VReg::new(3),
                vm: true,
            },
        );
        assert!(matches!(r, Err(crate::error::SimError::Vill)));
    }
}
