//! Instruction execution: `Machine::exec` dispatches one instruction and
//! reports the resulting control flow.
//!
//! Execution is split by family:
//! * [`scalar`] — RV64IM.
//! * [`config`] — `vsetvli`/`vsetivli`/`vsetvl`.
//! * [`varith`] — vector integer arithmetic, moves, merges, reductions.
//! * [`vmem`] — vector loads/stores (unit, strided, indexed, whole-register,
//!   mask).
//! * [`vmask`] — compares-to-mask and the mask instruction group
//!   (`viota`, `vcpop`, `vmsbf`, …).
//! * [`vperm`] — slides, gather, compress.
//!
//! ## Policy modelling
//!
//! `vstart` is always 0 (the machine never traps mid-instruction). Tail and
//! masked-off elements are left **undisturbed** — legal for both the
//! agnostic and undisturbed policies, and what the paper's kernels (which
//! run `ta, mu`) rely on.

mod config;
mod scalar;
mod varith;
mod vmask;
mod vmem;
mod vperm;

pub(crate) use scalar::{alu_fn, branch_fn};

use crate::error::SimResult;
use crate::machine::Machine;
use rvv_isa::Instr;

/// Control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Fall through to `pc + 4`.
    Next,
    /// Transfer to an absolute byte address.
    Jump(u64),
    /// `ecall`: the program finished.
    Halt,
}

impl Machine {
    /// Execute one instruction at `pc`. On success the instruction is
    /// counted as retired and the control-flow outcome is returned; on error
    /// nothing is counted (the trap aborts the run).
    pub fn exec(&mut self, pc: u64, instr: &Instr) -> SimResult<Control> {
        let ctl = self.exec_inner(pc, instr)?;
        self.counters.retire(instr);
        Ok(ctl)
    }

    /// [`Machine::exec`] without the retire accounting. The execution-plan
    /// engine routes unspecialized instructions here and counts them by the
    /// plan's precomputed class; `exec` is this plus `Counters::retire`.
    pub(crate) fn exec_inner(&mut self, pc: u64, instr: &Instr) -> SimResult<Control> {
        use Instr::*;
        let ctl = match *instr {
            // Scalar.
            Lui { .. }
            | Auipc { .. }
            | Jal { .. }
            | Jalr { .. }
            | Branch { .. }
            | Load { .. }
            | Store { .. }
            | OpImm { .. }
            | Op { .. }
            | Csrr { .. }
            | Ecall
            | Ebreak => self.exec_scalar(pc, instr)?,
            // Vector configuration.
            Vsetvli { .. } | Vsetivli { .. } | Vsetvl { .. } => {
                self.exec_vconfig(instr)?;
                Control::Next
            }
            // Vector memory.
            VLoad { .. }
            | VStore { .. }
            | VLoadStrided { .. }
            | VStoreStrided { .. }
            | VLoadIndexed { .. }
            | VStoreIndexed { .. }
            | VLoadWhole { .. }
            | VStoreWhole { .. }
            | VLoadMask { .. }
            | VStoreMask { .. } => {
                self.exec_vmem(instr)?;
                Control::Next
            }
            // Vector arithmetic / moves / reductions.
            VOpVV { .. }
            | VOpVX { .. }
            | VOpVI { .. }
            | VMergeVVM { .. }
            | VMergeVXM { .. }
            | VMergeVIM { .. }
            | VMvVV { .. }
            | VMvVX { .. }
            | VMvVI { .. }
            | VMvSX { .. }
            | VMvXS { .. }
            | VRed { .. } => {
                self.exec_varith(instr)?;
                Control::Next
            }
            // Masks.
            VCmpVV { .. }
            | VCmpVX { .. }
            | VCmpVI { .. }
            | VMaskLogic { .. }
            | VIota { .. }
            | VId { .. }
            | VCpop { .. }
            | VFirst { .. }
            | VMsbf { .. }
            | VMsif { .. }
            | VMsof { .. } => {
                self.exec_vmask(instr)?;
                Control::Next
            }
            // Permutation.
            VSlideUpVX { .. }
            | VSlideUpVI { .. }
            | VSlideDownVX { .. }
            | VSlideDownVI { .. }
            | VSlide1Up { .. }
            | VSlide1Down { .. }
            | VRGatherVV { .. }
            | VRGatherVX { .. }
            | VCompress { .. } => {
                self.exec_vperm(instr)?;
                Control::Next
            }
        };
        Ok(ctl)
    }
}
