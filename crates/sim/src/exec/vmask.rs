//! Mask-producing and mask-consuming instructions: integer compares,
//! mask-register logicals, `viota`, `vid`, `vcpop`, `vfirst`, and the
//! set-before/including/only-first family.
//!
//! These are the heart of the paper's segmented-scan support: `vmsne`
//! derives the head-flag mask, `vmsbf` builds the carry mask, `viota` +
//! `vcpop` implement `enumerate`.

use crate::error::{SimError, SimResult};
use crate::machine::Machine;
use rvv_isa::{Instr, MaskOp, Sew, VCmp, VReg};

fn cmp(cond: VCmp, sew: Sew, a: u64, b: u64) -> bool {
    let (sa, sb) = (sew.sign_extend(a), sew.sign_extend(b));
    match cond {
        VCmp::Eq => a == b,
        VCmp::Ne => a != b,
        VCmp::Ltu => a < b,
        VCmp::Lt => sa < sb,
        VCmp::Leu => a <= b,
        VCmp::Le => sa <= sb,
        VCmp::Gtu => a > b,
        VCmp::Gt => sa > sb,
    }
}

fn mask_logic(op: MaskOp, a: bool, b: bool) -> bool {
    match op {
        MaskOp::Andn => a & !b,
        MaskOp::And => a & b,
        MaskOp::Or => a | b,
        MaskOp::Xor => a ^ b,
        MaskOp::Orn => a | !b,
        MaskOp::Nand => !(a & b),
        MaskOp::Nor => !(a | b),
        MaskOp::Xnor => !(a ^ b),
    }
}

impl Machine {
    /// Compare-to-mask. The destination is a single mask register; results
    /// are staged in a buffer so a destination overlapping a source group is
    /// well-defined.
    fn compare(
        &mut self,
        cond: VCmp,
        vd: VReg,
        vs2: VReg,
        b_of: impl Fn(&Machine, u32, Sew) -> u64,
        vm: bool,
    ) -> SimResult<()> {
        let (t, vl) = self.vcfg()?;
        self.check_group(vs2, t.lmul)?;
        let mut bits = Vec::with_capacity(vl as usize);
        for i in 0..vl {
            if self.active(vm, i) {
                let a = self.velem(vs2, i, t.sew);
                let b = t.sew.truncate(b_of(self, i, t.sew));
                bits.push(Some(cmp(cond, t.sew, a, b)));
            } else {
                bits.push(None); // mask-undisturbed
            }
        }
        for (i, bit) in bits.into_iter().enumerate() {
            if let Some(v) = bit {
                self.set_mask_bit(vd, i as u32, v);
            }
        }
        Ok(())
    }

    pub(super) fn exec_vmask(&mut self, instr: &Instr) -> SimResult<()> {
        use Instr::*;
        match *instr {
            VCmpVV {
                cond,
                vd,
                vs2,
                vs1,
                vm,
            } => {
                let (t, _) = self.vcfg()?;
                self.check_group(vs1, t.lmul)?;
                self.compare(cond, vd, vs2, move |m, i, sew| m.velem(vs1, i, sew), vm)
            }
            VCmpVX {
                cond,
                vd,
                vs2,
                rs1,
                vm,
            } => {
                let x = self.xreg(rs1);
                self.compare(cond, vd, vs2, move |_, _, _| x, vm)
            }
            VCmpVI {
                cond,
                vd,
                vs2,
                imm,
                vm,
            } => self.compare(cond, vd, vs2, move |_, _, _| imm as i64 as u64, vm),
            VMaskLogic { op, vd, vs2, vs1 } => {
                let (_, vl) = self.vcfg()?;
                for i in 0..vl {
                    let a = self.mask_bit(vs2, i);
                    let b = self.mask_bit(vs1, i);
                    self.set_mask_bit(vd, i, mask_logic(op, a, b));
                }
                Ok(())
            }
            VCpop { rd, vs2, vm } => {
                let (_, vl) = self.vcfg()?;
                let mut n = 0u64;
                for i in 0..vl {
                    if self.active(vm, i) && self.mask_bit(vs2, i) {
                        n += 1;
                    }
                }
                self.set_xreg(rd, n);
                Ok(())
            }
            VFirst { rd, vs2, vm } => {
                let (_, vl) = self.vcfg()?;
                let mut idx = u64::MAX; // -1
                for i in 0..vl {
                    if self.active(vm, i) && self.mask_bit(vs2, i) {
                        idx = i as u64;
                        break;
                    }
                }
                self.set_xreg(rd, idx);
                Ok(())
            }
            VMsbf { vd, vs2, vm } => self.set_first_family(vd, vs2, vm, |found, bit| {
                // set-before-first: 1 strictly before the first set bit.
                !found && !bit
            }),
            VMsif { vd, vs2, vm } => self.set_first_family(vd, vs2, vm, |found, _bit| {
                // set-including-first: 1 up to and including the first set bit.
                !found
            }),
            VMsof { vd, vs2, vm } => self.set_first_family(vd, vs2, vm, |found, bit| {
                // set-only-first.
                !found && bit
            }),
            VIota { vd, vs2, vm } => {
                let (t, vl) = self.vcfg()?;
                self.check_group(vd, t.lmul)?;
                if Machine::groups_overlap(vd, t.lmul.regs(), vs2, 1) {
                    return Err(SimError::OverlapConstraint {
                        what: "viota vd overlaps vs2",
                    });
                }
                if !vm && Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
                    return Err(SimError::OverlapConstraint {
                        what: "masked viota writing v0",
                    });
                }
                let mut count = 0u64;
                for i in 0..vl {
                    if self.active(vm, i) {
                        self.set_velem(vd, i, t.sew, count);
                        if self.mask_bit(vs2, i) {
                            count += 1;
                        }
                    }
                }
                Ok(())
            }
            VId { vd, vm } => {
                let (t, vl) = self.vcfg()?;
                self.check_group(vd, t.lmul)?;
                if !vm && Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
                    return Err(SimError::OverlapConstraint {
                        what: "masked vid writing v0",
                    });
                }
                for i in 0..vl {
                    if self.active(vm, i) {
                        self.set_velem(vd, i, t.sew, i as u64);
                    }
                }
                Ok(())
            }
            _ => unreachable!("non-mask instruction routed to exec_vmask"),
        }
    }

    /// Shared loop for `vmsbf`/`vmsif`/`vmsof`. `f(found_before, bit)` gives
    /// the output bit for an active element; `found_before` is whether a set
    /// bit was seen strictly earlier (among active elements).
    fn set_first_family(
        &mut self,
        vd: VReg,
        vs2: VReg,
        vm: bool,
        f: impl Fn(bool, bool) -> bool,
    ) -> SimResult<()> {
        let (_, vl) = self.vcfg()?;
        let mut found = false;
        let mut out = Vec::with_capacity(vl as usize);
        for i in 0..vl {
            if self.active(vm, i) {
                let bit = self.mask_bit(vs2, i);
                out.push(Some(f(found, bit)));
                if bit {
                    found = true;
                }
            } else {
                out.push(None);
            }
        }
        for (i, b) in out.into_iter().enumerate() {
            if let Some(v) = b {
                self.set_mask_bit(vd, i as u32, v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use rvv_isa::{Lmul, VType, XReg};

    fn machine_e32(vl: u32) -> Machine {
        let mut m = Machine::new(MachineConfig {
            vlen: 256,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(10), vl as u64);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
        )
        .unwrap();
        m
    }

    fn set_vec(m: &mut Machine, r: VReg, vals: &[u64]) {
        for (i, &v) in vals.iter().enumerate() {
            m.set_velem(r, i as u32, Sew::E32, v);
        }
    }

    fn mask_bits(m: &Machine, r: VReg, n: u32) -> Vec<bool> {
        (0..n).map(|i| m.mask_bit(r, i)).collect()
    }

    #[test]
    fn vmsne_builds_head_flag_mask() {
        // The paper: mask = vmsne(flags, 0) turns head-flag words into a mask.
        let mut m = machine_e32(6);
        set_vec(&mut m, VReg::new(1), &[1, 0, 0, 1, 0, 1]);
        m.exec(
            0,
            &Instr::VCmpVI {
                cond: VCmp::Ne,
                vd: VReg::new(4),
                vs2: VReg::new(1),
                imm: 0,
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(4), 6),
            vec![true, false, false, true, false, true]
        );
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let mut m = machine_e32(2);
        set_vec(&mut m, VReg::new(1), &[0xffff_ffff, 1]); // -1, 1
        m.set_xreg(XReg::new(5), 0);
        m.exec(
            0,
            &Instr::VCmpVX {
                cond: VCmp::Lt,
                vd: VReg::new(4),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(mask_bits(&m, VReg::new(4), 2), vec![true, false]);
        m.exec(
            0,
            &Instr::VCmpVX {
                cond: VCmp::Ltu,
                vd: VReg::new(4),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(mask_bits(&m, VReg::new(4), 2), vec![false, false]);
    }

    #[test]
    fn vmsbf_matches_paper_carry_mask() {
        // Head flags at positions 2 and 4: the carry mask must cover
        // elements strictly before position 2.
        let mut m = machine_e32(6);
        m.set_mask_bit(VReg::new(2), 2, true);
        m.set_mask_bit(VReg::new(2), 4, true);
        m.exec(
            0,
            &Instr::VMsbf {
                vd: VReg::new(3),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(3), 6),
            vec![true, true, false, false, false, false]
        );
        m.exec(
            0,
            &Instr::VMsif {
                vd: VReg::new(4),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(4), 6),
            vec![true, true, true, false, false, false]
        );
        m.exec(
            0,
            &Instr::VMsof {
                vd: VReg::new(5),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(5), 6),
            vec![false, false, true, false, false, false]
        );
    }

    #[test]
    fn vmsbf_all_zero_mask_gives_all_ones() {
        let mut m = machine_e32(4);
        m.exec(
            0,
            &Instr::VMsbf {
                vd: VReg::new(3),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(mask_bits(&m, VReg::new(3), 4), vec![true; 4]);
    }

    #[test]
    fn viota_is_exclusive_prefix_popcount() {
        let mut m = machine_e32(6);
        for (i, b) in [true, false, true, true, false, true].iter().enumerate() {
            m.set_mask_bit(VReg::new(2), i as u32, *b);
        }
        m.exec(
            0,
            &Instr::VIota {
                vd: VReg::new(4),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        let got: Vec<u64> = (0..6).map(|i| m.velem(VReg::new(4), i, Sew::E32)).collect();
        assert_eq!(got, vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn viota_overlap_traps() {
        let mut m = machine_e32(4);
        let r = m.exec(
            0,
            &Instr::VIota {
                vd: VReg::new(2),
                vs2: VReg::new(2),
                vm: true,
            },
        );
        assert!(matches!(r, Err(SimError::OverlapConstraint { .. })));
    }

    #[test]
    fn vcpop_and_vfirst() {
        let mut m = machine_e32(8);
        for i in [1u32, 3, 6] {
            m.set_mask_bit(VReg::new(2), i, true);
        }
        m.exec(
            0,
            &Instr::VCpop {
                rd: XReg::new(5),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(5)), 3);
        m.exec(
            0,
            &Instr::VFirst {
                rd: XReg::new(6),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(6)), 1);
        // Masked variants only see active elements.
        m.set_mask_bit(VReg::V0, 3, true);
        m.set_mask_bit(VReg::V0, 6, true);
        m.exec(
            0,
            &Instr::VCpop {
                rd: XReg::new(5),
                vs2: VReg::new(2),
                vm: false,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(5)), 2);
        m.exec(
            0,
            &Instr::VFirst {
                rd: XReg::new(6),
                vs2: VReg::new(2),
                vm: false,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(6)), 3);
    }

    #[test]
    fn vfirst_empty_is_minus_one() {
        let mut m = machine_e32(4);
        m.exec(
            0,
            &Instr::VFirst {
                rd: XReg::new(6),
                vs2: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(6)), u64::MAX);
    }

    #[test]
    fn vid_writes_indices() {
        let mut m = machine_e32(5);
        m.exec(
            0,
            &Instr::VId {
                vd: VReg::new(3),
                vm: true,
            },
        )
        .unwrap();
        let got: Vec<u64> = (0..5).map(|i| m.velem(VReg::new(3), i, Sew::E32)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mask_logic_ops() {
        let mut m = machine_e32(4);
        for i in [0u32, 1] {
            m.set_mask_bit(VReg::new(1), i, true); // a = 1100 (LSB first)
        }
        for i in [1u32, 2] {
            m.set_mask_bit(VReg::new(2), i, true); // b = 0110
        }
        m.exec(
            0,
            &Instr::VMaskLogic {
                op: MaskOp::And,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(3), 4),
            vec![false, true, false, false]
        );
        m.exec(
            0,
            &Instr::VMaskLogic {
                op: MaskOp::Xor,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(3), 4),
            vec![true, false, true, false]
        );
        m.exec(
            0,
            &Instr::VMaskLogic {
                op: MaskOp::Nor,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(
            mask_bits(&m, VReg::new(3), 4),
            vec![false, false, false, true]
        );
    }
}
