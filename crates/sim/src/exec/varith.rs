//! Vector integer arithmetic, merges, moves, and reductions.

use crate::error::{SimError, SimResult};
use crate::machine::Machine;
use rvv_isa::{Instr, Sew, VAluOp, VRedOp, VReg};

/// One element-wise ALU operation at a given SEW. `a` is `vs2` (the "vector"
/// operand), `b` is `vs1`/`rs1`/`imm`. Both arrive zero-extended; results are
/// truncated to SEW by the caller's `set_velem`.
#[allow(clippy::manual_checked_ops)] // div-by-zero yields RVV's all-ones, not None
pub(crate) fn velem_op(op: VAluOp, sew: Sew, a: u64, b: u64) -> u64 {
    let sa = sew.sign_extend(a);
    let sb = sew.sign_extend(b);
    let shamt = (b & (sew.bits() as u64 - 1)) as u32;
    match op {
        VAluOp::Add => a.wrapping_add(b),
        VAluOp::Sub => a.wrapping_sub(b),
        VAluOp::Rsub => b.wrapping_sub(a),
        VAluOp::Minu => a.min(b),
        VAluOp::Min => sa.min(sb) as u64,
        VAluOp::Maxu => a.max(b),
        VAluOp::Max => sa.max(sb) as u64,
        VAluOp::And => a & b,
        VAluOp::Or => a | b,
        VAluOp::Xor => a ^ b,
        VAluOp::Sll => a.wrapping_shl(shamt),
        VAluOp::Srl => a.wrapping_shr(shamt),
        VAluOp::Sra => (sa >> shamt) as u64,
        VAluOp::Mul => a.wrapping_mul(b),
        VAluOp::Mulh => (((sa as i128) * (sb as i128)) >> sew.bits()) as u64,
        VAluOp::Mulhu => (((a as u128) * (b as u128)) >> sew.bits()) as u64,
        VAluOp::Divu => {
            if b == 0 {
                sew.max_value()
            } else {
                a / b
            }
        }
        VAluOp::Div => {
            if sb == 0 {
                sew.max_value() // all ones == -1 at SEW
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        VAluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        VAluOp::Rem => {
            if sb == 0 {
                a
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
    }
}

fn red_op(op: VRedOp, sew: Sew, acc: u64, x: u64) -> u64 {
    match op {
        VRedOp::Sum => acc.wrapping_add(x),
        VRedOp::And => acc & x,
        VRedOp::Or => acc | x,
        VRedOp::Xor => acc ^ x,
        VRedOp::Minu => acc.min(x),
        VRedOp::Min => sew.sign_extend(acc).min(sew.sign_extend(x)) as u64,
        VRedOp::Maxu => acc.max(x),
        VRedOp::Max => sew.sign_extend(acc).max(sew.sign_extend(x)) as u64,
    }
}

impl Machine {
    /// Alignment + v0-overlap checks shared by masked data-writing vector
    /// instructions: every named group must be LMUL-aligned, and a masked
    /// instruction may not write the group containing `v0`.
    pub(crate) fn check_data_op(&self, vd: VReg, srcs: &[VReg], vm: bool) -> SimResult<()> {
        let (t, _) = self.vcfg()?;
        self.check_group(vd, t.lmul)?;
        for &s in srcs {
            self.check_group(s, t.lmul)?;
        }
        if !vm && Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
            return Err(SimError::OverlapConstraint {
                what: "masked op writing v0 group",
            });
        }
        Ok(())
    }

    fn vv(&mut self, op: VAluOp, vd: VReg, vs2: VReg, vs1: VReg, vm: bool) -> SimResult<()> {
        self.check_data_op(vd, &[vs2, vs1], vm)?;
        let (t, vl) = self.vcfg()?;
        for i in 0..vl {
            if self.active(vm, i) {
                let a = self.velem(vs2, i, t.sew);
                let b = self.velem(vs1, i, t.sew);
                self.set_velem(vd, i, t.sew, velem_op(op, t.sew, a, b));
            }
        }
        Ok(())
    }

    fn vx(&mut self, op: VAluOp, vd: VReg, vs2: VReg, b: u64, vm: bool) -> SimResult<()> {
        self.check_data_op(vd, &[vs2], vm)?;
        let (t, vl) = self.vcfg()?;
        let b = t.sew.truncate(b);
        for i in 0..vl {
            if self.active(vm, i) {
                let a = self.velem(vs2, i, t.sew);
                self.set_velem(vd, i, t.sew, velem_op(op, t.sew, a, b));
            }
        }
        Ok(())
    }

    pub(super) fn exec_varith(&mut self, instr: &Instr) -> SimResult<()> {
        use Instr::*;
        match *instr {
            VOpVV {
                op,
                vd,
                vs2,
                vs1,
                vm,
            } => self.vv(op, vd, vs2, vs1, vm),
            VOpVX {
                op,
                vd,
                vs2,
                rs1,
                vm,
            } => {
                let b = self.xreg(rs1);
                self.vx(op, vd, vs2, b, vm)
            }
            VOpVI {
                op,
                vd,
                vs2,
                imm,
                vm,
            } => {
                let b = if op.imm_is_unsigned() {
                    imm as u8 as u64
                } else {
                    imm as i64 as u64
                };
                self.vx(op, vd, vs2, b, vm)
            }
            VMergeVVM { vd, vs2, vs1 } => {
                self.check_data_op(vd, &[vs2, vs1], true)?;
                let (t, vl) = self.vcfg()?;
                if Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
                    return Err(SimError::OverlapConstraint {
                        what: "vmerge writing v0 group",
                    });
                }
                for i in 0..vl {
                    let v = if self.mask_bit(VReg::V0, i) {
                        self.velem(vs1, i, t.sew)
                    } else {
                        self.velem(vs2, i, t.sew)
                    };
                    self.set_velem(vd, i, t.sew, v);
                }
                Ok(())
            }
            VMergeVXM { vd, vs2, rs1 } => {
                let x = self.xreg(rs1);
                self.merge_scalar(vd, vs2, x)
            }
            VMergeVIM { vd, vs2, imm } => self.merge_scalar(vd, vs2, imm as i64 as u64),
            VMvVV { vd, vs1 } => {
                self.check_data_op(vd, &[vs1], true)?;
                let (t, vl) = self.vcfg()?;
                for i in 0..vl {
                    let v = self.velem(vs1, i, t.sew);
                    self.set_velem(vd, i, t.sew, v);
                }
                Ok(())
            }
            VMvVX { vd, rs1 } => {
                self.check_data_op(vd, &[], true)?;
                let (t, vl) = self.vcfg()?;
                let v = t.sew.truncate(self.xreg(rs1));
                for i in 0..vl {
                    self.set_velem(vd, i, t.sew, v);
                }
                Ok(())
            }
            VMvVI { vd, imm } => {
                self.check_data_op(vd, &[], true)?;
                let (t, vl) = self.vcfg()?;
                let v = t.sew.truncate(imm as i64 as u64);
                for i in 0..vl {
                    self.set_velem(vd, i, t.sew, v);
                }
                Ok(())
            }
            VMvSX { vd, rs1 } => {
                // Writes element 0 only; no-op when vl == 0. vd need not be
                // LMUL-aligned per spec, but we require a legal vtype.
                let (t, vl) = self.vcfg()?;
                if vl > 0 {
                    let v = self.xreg(rs1);
                    self.set_velem(vd, 0, t.sew, v);
                }
                Ok(())
            }
            VMvXS { rd, vs2 } => {
                let (t, _) = self.vcfg()?;
                let v = t.sew.sign_extend(self.velem(vs2, 0, t.sew)) as u64;
                self.set_xreg(rd, v);
                Ok(())
            }
            VRed {
                op,
                vd,
                vs2,
                vs1,
                vm,
            } => {
                // Reductions: vs2 is a full group; vd/vs1 use element 0 only.
                let (t, vl) = self.vcfg()?;
                self.check_group(vs2, t.lmul)?;
                if vl == 0 {
                    return Ok(()); // vd unchanged per spec
                }
                let mut acc = self.velem(vs1, 0, t.sew);
                for i in 0..vl {
                    if self.active(vm, i) {
                        let x = self.velem(vs2, i, t.sew);
                        acc = t.sew.truncate(red_op(op, t.sew, acc, x));
                    }
                }
                self.set_velem(vd, 0, t.sew, acc);
                Ok(())
            }
            _ => unreachable!("non-arith instruction routed to exec_varith"),
        }
    }

    fn merge_scalar(&mut self, vd: VReg, vs2: VReg, x: u64) -> SimResult<()> {
        self.check_data_op(vd, &[vs2], true)?;
        let (t, vl) = self.vcfg()?;
        if Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
            return Err(SimError::OverlapConstraint {
                what: "vmerge writing v0 group",
            });
        }
        let x = t.sew.truncate(x);
        for i in 0..vl {
            let v = if self.mask_bit(VReg::V0, i) {
                x
            } else {
                self.velem(vs2, i, t.sew)
            };
            self.set_velem(vd, i, t.sew, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use rvv_isa::{Lmul, VType, XReg};

    fn machine_e32(vl: u32) -> Machine {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(10), vl as u64);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
        )
        .unwrap();
        m
    }

    fn set_vec(m: &mut Machine, r: VReg, vals: &[u64]) {
        for (i, &v) in vals.iter().enumerate() {
            m.set_velem(r, i as u32, Sew::E32, v);
        }
    }

    fn get_vec(m: &Machine, r: VReg, n: u32) -> Vec<u64> {
        (0..n).map(|i| m.velem(r, i, Sew::E32)).collect()
    }

    #[test]
    fn vadd_vv_wraps_at_sew() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[u32::MAX as u64, 1, 2, 3]);
        set_vec(&mut m, VReg::new(2), &[1, 10, 20, 30]);
        m.exec(
            0,
            &Instr::VOpVV {
                op: VAluOp::Add,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![0, 11, 22, 33]);
    }

    #[test]
    fn masked_add_leaves_inactive_undisturbed() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[5, 5, 5, 5]);
        set_vec(&mut m, VReg::new(3), &[9, 9, 9, 9]);
        // mask = 0b0101
        m.set_mask_bit(VReg::V0, 0, true);
        m.set_mask_bit(VReg::V0, 2, true);
        m.set_xreg(XReg::new(5), 100);
        m.exec(
            0,
            &Instr::VOpVX {
                op: VAluOp::Add,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                rs1: XReg::new(5),
                vm: false,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![105, 9, 105, 9]);
    }

    #[test]
    fn tail_elements_undisturbed() {
        let mut m = machine_e32(2); // vl = 2 of 4
        set_vec(&mut m, VReg::new(3), &[7, 7, 7, 7]);
        set_vec(&mut m, VReg::new(1), &[1, 1, 1, 1]);
        m.exec(
            0,
            &Instr::VOpVI {
                op: VAluOp::Add,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                imm: 1,
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![2, 2, 7, 7]);
    }

    #[test]
    fn signed_ops_at_sew() {
        let mut m = machine_e32(2);
        set_vec(&mut m, VReg::new(1), &[0xffff_ffff, 3]); // -1, 3 as i32
        set_vec(&mut m, VReg::new(2), &[1, 0xffff_fffe]); // 1, -2
        m.exec(
            0,
            &Instr::VOpVV {
                op: VAluOp::Max,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 2), vec![1, 3]);
        m.exec(
            0,
            &Instr::VOpVV {
                op: VAluOp::Div,
                vd: VReg::new(4),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        // -1/1 = -1; 3/-2 = -1 (trunc toward zero)
        assert_eq!(get_vec(&m, VReg::new(4), 2), vec![0xffff_ffff, 0xffff_ffff]);
    }

    #[test]
    fn vrsub_and_vi() {
        let mut m = machine_e32(2);
        set_vec(&mut m, VReg::new(1), &[3, 10]);
        m.exec(
            0,
            &Instr::VOpVI {
                op: VAluOp::Rsub,
                vd: VReg::new(2),
                vs2: VReg::new(1),
                imm: 5,
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(2), 2), vec![2, 0xffff_fffb]);
    }

    #[test]
    fn vmerge_and_moves() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4]);
        set_vec(&mut m, VReg::new(2), &[10, 20, 30, 40]);
        m.set_mask_bit(VReg::V0, 1, true);
        m.set_mask_bit(VReg::V0, 3, true);
        m.exec(
            0,
            &Instr::VMergeVVM {
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(3), 4), vec![1, 20, 3, 40]);
        m.exec(
            0,
            &Instr::VMvVI {
                vd: VReg::new(4),
                imm: -1,
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(4), 4), vec![0xffff_ffff; 4]);
        m.set_xreg(XReg::new(6), 0x1_0000_0007);
        m.exec(
            0,
            &Instr::VMvSX {
                vd: VReg::new(4),
                rs1: XReg::new(6),
            },
        )
        .unwrap();
        assert_eq!(get_vec(&m, VReg::new(4), 2), vec![7, 0xffff_ffff]);
        m.exec(
            0,
            &Instr::VMvXS {
                rd: XReg::new(7),
                vs2: VReg::new(4),
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(7)), 7);
    }

    #[test]
    fn vmv_xs_sign_extends() {
        let mut m = machine_e32(1);
        set_vec(&mut m, VReg::new(1), &[0x8000_0000]);
        m.exec(
            0,
            &Instr::VMvXS {
                rd: XReg::new(7),
                vs2: VReg::new(1),
            },
        )
        .unwrap();
        assert_eq!(m.xreg(XReg::new(7)), 0x8000_0000u32 as i32 as i64 as u64);
    }

    #[test]
    fn reduction_sum_and_masked() {
        let mut m = machine_e32(4);
        set_vec(&mut m, VReg::new(1), &[1, 2, 3, 4]);
        set_vec(&mut m, VReg::new(2), &[100, 0, 0, 0]);
        m.exec(
            0,
            &Instr::VRed {
                op: VRedOp::Sum,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: true,
            },
        )
        .unwrap();
        assert_eq!(m.velem(VReg::new(3), 0, Sew::E32), 110);
        m.set_mask_bit(VReg::V0, 0, true);
        m.set_mask_bit(VReg::V0, 3, true);
        m.exec(
            0,
            &Instr::VRed {
                op: VRedOp::Sum,
                vd: VReg::new(3),
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: false,
            },
        )
        .unwrap();
        assert_eq!(m.velem(VReg::new(3), 0, Sew::E32), 105);
    }

    #[test]
    fn lmul_misalignment_traps() {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::new(10), 8);
        m.exec(
            0,
            &Instr::Vsetvli {
                rd: XReg::ZERO,
                rs1: XReg::new(10),
                vtype: VType::new(Sew::E32, Lmul::M4),
            },
        )
        .unwrap();
        let r = m.exec(
            0,
            &Instr::VOpVV {
                op: VAluOp::Add,
                vd: VReg::new(3), // not a multiple of 4
                vs2: VReg::new(4),
                vs1: VReg::new(8),
                vm: true,
            },
        );
        assert!(matches!(r, Err(SimError::MisalignedGroup { .. })));
    }

    #[test]
    fn masked_op_cannot_write_v0_group() {
        let mut m = machine_e32(4);
        let r = m.exec(
            0,
            &Instr::VOpVV {
                op: VAluOp::Add,
                vd: VReg::V0,
                vs2: VReg::new(1),
                vs1: VReg::new(2),
                vm: false,
            },
        );
        assert!(matches!(r, Err(SimError::OverlapConstraint { .. })));
    }

    #[test]
    fn velem_op_table() {
        use VAluOp::*;
        let s = Sew::E32;
        // velem_op returns an untruncated 64-bit value; architectural
        // truncation to SEW happens at the register write. Compare at SEW.
        let at_sew = |op, a, b| s.truncate(velem_op(op, s, a, b));
        assert_eq!(at_sew(Minu, 1, 0xffff_ffff), 1);
        assert_eq!(at_sew(Min, 1, 0xffff_ffff), 0xffff_ffff); // -1 < 1
        assert_eq!(at_sew(Sll, 1, 33), 2); // shamt mod 32
        assert_eq!(at_sew(Sra, 0x8000_0000, 31), 0xffff_ffff);
        assert_eq!(at_sew(Mulhu, 0xffff_ffff, 0xffff_ffff), 0xffff_fffe);
        assert_eq!(at_sew(Mulh, 0xffff_ffff, 0xffff_ffff), 0); // (-1)*(-1)>>32
        assert_eq!(at_sew(Divu, 5, 0), 0xffff_ffff);
        assert_eq!(at_sew(Remu, 5, 0), 5);
        assert_eq!(at_sew(Xor, 0b1100, 0b1010), 0b0110);
    }
}
