//! Pre-decoded execution plans: the canonical executable form.
//!
//! [`CompiledPlan::compile`] lowers a [`Program`] once — classifying every
//! instruction, pre-resolving operation selectors to function pointers,
//! pre-extending immediates, and turning branch/jump byte targets into
//! instruction indices — so the run loop does none of that work per retire.
//! Vector ops additionally get SEW-monomorphized inner-loop kernels
//! (generic over `u8`/`u16`/`u32`/`u64`) selected at `vsetvli` boundaries
//! through a per-op *vtype specialization cache* instead of matching on the
//! element width per element.
//!
//! ## Dispatch-independence invariant
//!
//! The plan engine is an implementation detail: architectural results,
//! [`crate::Counters`] totals and per-class histograms, trace events, and
//! trap behaviour are bit-identical to the legacy single-step interpreter
//! ([`Machine::run_legacy`]). The differential fuzz suite
//! (`tests/fuzz_exec.rs`) enforces this on random programs.
//!
//! ## Why the cache key is the SEW alone
//!
//! Kernels are monomorphized over the element type only; `vl`, LMUL, and the
//! mask are read at execution time through the same `Machine` accessors the
//! legacy interpreter uses. A `vsetvli` that changes LMUL but not SEW
//! therefore hits the cache; the cache is one once-initialized slot per SEW
//! per micro-op (`vill`, key 0, errors before any slot is touched), which
//! is exact for the paper's kernels (each static vector instruction runs
//! under one vtype per strip-mined loop) and lock-free on the hit path.
//!
//! ## Thread safety
//!
//! `CompiledPlan` is `Send + Sync` (asserted below): the ops are immutable
//! after compilation and the specialization caches are [`OnceLock`] slots,
//! so one plan instance compiled into a shared registry can be executed
//! concurrently by many machines. All *mutable* state lives in the
//! `Machine` executing the plan, never in the plan itself.

use crate::error::{SimError, SimResult};
use crate::exec::{alu_fn, branch_fn, Control};
use crate::machine::Machine;
use crate::program::{Program, RunReport};
use crate::trace::{RetireEvent, TraceSink};
use rvv_isa::{Instr, InstrClass, MemWidth, Sew, VAluOp, VCmp, VCsr, VReg, XReg};
use std::sync::OnceLock;

// ------------------------------------------------------------------ types --

/// A program lowered to pre-decoded micro-ops, ready to execute.
///
/// Compiling is cheap (one pass over the instructions) and the plan is
/// immutable architectural-wise; the embedded specialization caches use
/// interior mutability, so repeated runs of a cached plan (e.g. through
/// `scanvec`'s kernel cache) keep their resolved kernels warm.
#[derive(Debug)]
pub struct CompiledPlan {
    source: Program,
    ops: Vec<MicroOp>,
    /// Fusion window index, built lazily on the first fused-tier run (the
    /// other two engines never pay for it).
    fused: OnceLock<fused::FusionTable>,
}

// Compile-time proof that a plan can be shared read-only across worker
// threads (the `scanvec` plan registry hands out `Arc<CompiledPlan>`).
// Breaking this — e.g. by reintroducing `Cell`/`Rc` state — is a build
// error here rather than a failure at every downstream use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledPlan>();
};

impl CompiledPlan {
    /// Lower `program` into a plan. Never fails: instructions that cannot be
    /// specialized fall back to the legacy dispatcher, and control flow to
    /// invalid targets is materialized as a pre-resolved bad jump that traps
    /// exactly like the legacy run loop.
    pub fn compile(program: Program) -> CompiledPlan {
        let len = program.instrs.len();
        let ops = program
            .instrs
            .iter()
            .enumerate()
            .map(|(i, ins)| MicroOp {
                class: InstrClass::of(ins),
                kind: lower(i, ins, len),
            })
            .collect();
        CompiledPlan {
            source: program,
            ops,
            fused: OnceLock::new(),
        }
    }

    /// The fusion window index for [`Machine::run_fused`], built on first
    /// use and cached for the plan's lifetime (plans are immutable).
    pub(crate) fn fusion(&self) -> &fused::FusionTable {
        self.fused.get_or_init(|| fused::FusionTable::build(self))
    }

    /// Number of *static* fusion windows the fused tier recognized in this
    /// plan. Diagnostic: coverage goldens pin it so a refactor that
    /// silently de-fuses a hot loop fails loudly.
    pub fn fused_window_count(&self) -> usize {
        self.fusion().window_count()
    }

    /// The source program (instructions, name, symbol marks).
    pub fn program(&self) -> &Program {
        &self.source
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.source.name
    }

    /// Length in instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One pre-decoded instruction: its class (pre-computed for retire
/// accounting and tracing) plus the executable form.
#[derive(Debug)]
struct MicroOp {
    class: InstrClass,
    kind: OpKind,
}

/// A branch/jump target resolved at compile time.
#[derive(Debug, Clone, Copy)]
enum Target {
    /// A valid instruction index (index == len is representable: it traps at
    /// the driver's bounds check with the correct byte target).
    Idx(u32),
    /// A target that can never be valid (misaligned or out of range).
    Bad(u64),
}

impl Target {
    #[inline(always)]
    fn flow(self) -> Flow {
        match self {
            Target::Idx(i) => Flow::To(i as usize),
            Target::Bad(t) => Flow::BadJump(t),
        }
    }
}

/// Control-flow outcome of one micro-op.
#[derive(Debug, Clone, Copy)]
enum Flow {
    /// Fall through.
    Seq,
    /// Transfer to an instruction index.
    To(usize),
    /// A vector-configuration op retired: refresh the vtype key.
    Cfg,
    /// The op retired but its jump target is invalid; the *next* loop
    /// iteration traps (after the fuel check, exactly like the legacy loop).
    BadJump(u64),
    /// `ecall`.
    Halt,
}

/// The `vs1`/`rs1`/`imm` operand of a vector op, with immediates already
/// sign- or zero-extended per the instruction's rules.
#[derive(Debug, Clone, Copy)]
enum VSrc {
    V(VReg),
    X(XReg),
    I(u64),
}

/// Which slide variant a `VSlide` micro-op performs.
#[derive(Debug, Clone, Copy)]
enum SlideKind {
    Up,
    Down,
    Up1,
    Down1,
}

/// Slide offset (or, for `vslide1up`/`vslide1down`, the inserted scalar).
#[derive(Debug, Clone, Copy)]
enum SlideOff {
    X(XReg),
    I(u64),
}

impl SlideOff {
    #[inline(always)]
    fn value(self, m: &Machine) -> u64 {
        match self {
            SlideOff::X(r) => m.xreg(r),
            SlideOff::I(v) => v,
        }
    }
}

/// Right-hand side of a scalar ALU micro-op.
#[derive(Debug, Clone, Copy)]
enum AluRhs {
    Reg(XReg),
    Imm(u64),
}

/// Per-op vtype specialization cache: one [`OnceLock`] kernel slot per SEW
/// key (the key is [`vtype_key`]: 0 = `vill`, 1..=4 = SEW). A hit is one
/// acquire load; a miss resolves the kernel for that SEW exactly once, even
/// under concurrent lookups — which is what makes a [`CompiledPlan`]
/// `Sync`: a plan cached in a shared registry can be executed by many
/// worker threads at once, each warming or reusing the same resolved
/// kernels. Resolution is a pure function of `(op, SEW)`, so racing
/// initializers compute identical pointers.
struct KCache<F> {
    slots: [OnceLock<F>; 4],
}

impl<F> std::fmt::Debug for KCache<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<u8> = (0..4u8)
            .filter(|&k| self.slots[k as usize].get().is_some())
            .map(|k| k + 1)
            .collect();
        write!(f, "KCache(resolved={keys:?})")
    }
}

impl<F: Copy> KCache<F> {
    fn new() -> KCache<F> {
        KCache {
            slots: [const { OnceLock::new() }; 4],
        }
    }

    /// Return the kernel for `key`, resolving on first use. Key 0 (`vill`)
    /// errors with [`SimError::Vill`] — the same first check every
    /// specialized vector family performs in the legacy interpreter.
    #[inline(always)]
    fn lookup(&self, key: u8, resolve: impl FnOnce(Sew) -> F) -> SimResult<F> {
        let sew = sew_of_key(key)?;
        Ok(*self.slots[(key - 1) as usize].get_or_init(|| resolve(sew)))
    }
}

/// Current vtype as a cache key: 0 when `vill`, else 1..=4 by SEW.
#[inline(always)]
fn vtype_key(m: &Machine) -> u8 {
    match m.vtype() {
        None => 0,
        Some(t) => match t.sew {
            Sew::E8 => 1,
            Sew::E16 => 2,
            Sew::E32 => 3,
            Sew::E64 => 4,
        },
    }
}

#[inline(always)]
fn sew_of_key(key: u8) -> SimResult<Sew> {
    match key {
        1 => Ok(Sew::E8),
        2 => Ok(Sew::E16),
        3 => Ok(Sew::E32),
        4 => Ok(Sew::E64),
        _ => Err(SimError::Vill),
    }
}

/// Resolve a dynamic (jalr / legacy-dispatched) jump target.
#[inline(always)]
fn resolve_dynamic(byte: u64, len: usize) -> Flow {
    if byte.is_multiple_of(4) && byte / 4 <= len as u64 {
        Flow::To((byte / 4) as usize)
    } else {
        Flow::BadJump(byte)
    }
}

/// Resolve a static (jal / branch) byte target at compile time.
fn resolve_target(byte: u64, len: usize) -> Target {
    if byte.is_multiple_of(4) && byte / 4 <= len as u64 {
        Target::Idx((byte / 4) as u32)
    } else {
        Target::Bad(byte)
    }
}

// ---------------------------------------------- SEW element monomorphism --

/// A fixed-width vector element type. The four implementations (`u8`,
/// `u16`, `u32`, `u64`) give each kernel a compile-time element size, so
/// register-file accesses are fixed-size `from_le_bytes`/`to_le_bytes`
/// instead of the legacy per-byte loops.
trait Elem: Copy {
    const SEW: Sew;
    const BYTES: usize;
    const BITS: u32;
    const MAX: u64;
    /// Read element `i` of the group at `base`, zero-extended.
    fn get(m: &Machine, base: VReg, i: u32) -> u64;
    /// Write element `i` of the group at `base` (truncating).
    fn set(m: &mut Machine, base: VReg, i: u32, v: u64);
    /// Sign-extend a SEW-truncated value to `i64`.
    fn sext(v: u64) -> i64;
    /// Read one element from a `BYTES`-long little-endian chunk — the
    /// slice-iterator counterpart of [`Elem::get`] for fused kernels.
    fn ld(b: &[u8]) -> u64;
    /// Write one element into a `BYTES`-long little-endian chunk
    /// (truncating).
    fn st(b: &mut [u8], v: u64);
}

macro_rules! elem {
    ($u:ty, $s:ty, $sew:expr) => {
        impl Elem for $u {
            const SEW: Sew = $sew;
            const BYTES: usize = std::mem::size_of::<$u>();
            const BITS: u32 = <$u>::BITS;
            const MAX: u64 = <$u>::MAX as u64;

            #[inline(always)]
            fn get(m: &Machine, base: VReg, i: u32) -> u64 {
                let off = base.num() as usize * m.vlenb() as usize + i as usize * Self::BYTES;
                let mut b = [0u8; std::mem::size_of::<$u>()];
                b.copy_from_slice(&m.vreg_store()[off..off + Self::BYTES]);
                <$u>::from_le_bytes(b) as u64
            }

            #[inline(always)]
            fn set(m: &mut Machine, base: VReg, i: u32, v: u64) {
                let off = base.num() as usize * m.vlenb() as usize + i as usize * Self::BYTES;
                m.vreg_store_mut()[off..off + Self::BYTES]
                    .copy_from_slice(&(v as $u).to_le_bytes());
            }

            #[inline(always)]
            fn sext(v: u64) -> i64 {
                v as $u as $s as i64
            }

            #[inline(always)]
            fn ld(b: &[u8]) -> u64 {
                <$u>::from_le_bytes(b.try_into().expect("chunk is BYTES long")) as u64
            }

            #[inline(always)]
            fn st(b: &mut [u8], v: u64) {
                b.copy_from_slice(&(v as $u).to_le_bytes());
            }
        }
    };
}

elem!(u8, i8, Sew::E8);
elem!(u16, i16, Sew::E16);
elem!(u32, i32, Sew::E32);
elem!(u64, i64, Sew::E64);

/// An element-wise binary operation, monomorphized per [`Elem`]. Formulas
/// mirror `velem_op` in `exec/varith.rs` exactly; operands arrive
/// zero-extended at SEW and results are truncated by `Elem::set`.
trait BinOp {
    fn apply<E: Elem>(a: u64, b: u64) -> u64;
}

macro_rules! binop {
    ($name:ident, |$a:ident, $b:ident| $body:expr) => {
        struct $name;
        impl BinOp for $name {
            #[inline(always)]
            fn apply<E: Elem>($a: u64, $b: u64) -> u64 {
                $body
            }
        }
    };
}

binop!(BAdd, |a, b| a.wrapping_add(b));
binop!(BSub, |a, b| a.wrapping_sub(b));
binop!(BRsub, |a, b| b.wrapping_sub(a));
binop!(BMinu, |a, b| a.min(b));
binop!(BMin, |a, b| E::sext(a).min(E::sext(b)) as u64);
binop!(BMaxu, |a, b| a.max(b));
binop!(BMax, |a, b| E::sext(a).max(E::sext(b)) as u64);
binop!(BAnd, |a, b| a & b);
binop!(BOr, |a, b| a | b);
binop!(BXor, |a, b| a ^ b);
binop!(BSll, |a, b| a
    .wrapping_shl((b & (E::BITS as u64 - 1)) as u32));
binop!(BSrl, |a, b| a
    .wrapping_shr((b & (E::BITS as u64 - 1)) as u32));
binop!(
    BSra,
    |a, b| (E::sext(a) >> ((b & (E::BITS as u64 - 1)) as u32)) as u64
);
binop!(BMul, |a, b| a.wrapping_mul(b));
binop!(
    BMulh,
    |a, b| (((E::sext(a) as i128) * (E::sext(b) as i128)) >> E::BITS) as u64
);
binop!(BMulhu, |a, b| (((a as u128) * (b as u128)) >> E::BITS)
    as u64);
binop!(BDivu, |a, b| a.checked_div(b).unwrap_or(E::MAX));
binop!(BDiv, |a, b| {
    let (sa, sb) = (E::sext(a), E::sext(b));
    if sb == 0 {
        E::MAX
    } else {
        sa.wrapping_div(sb) as u64
    }
});
binop!(BRemu, |a, b| if b == 0 { a } else { a % b });
binop!(BRem, |a, b| {
    let (sa, sb) = (E::sext(a), E::sext(b));
    if sb == 0 {
        a
    } else {
        sa.wrapping_rem(sb) as u64
    }
});

/// A compare condition, monomorphized per [`Elem`]. Mirrors `cmp` in
/// `exec/vmask.rs`.
trait CmpOp {
    fn cmp<E: Elem>(a: u64, b: u64) -> bool;
}

macro_rules! cmpop {
    ($name:ident, |$a:ident, $b:ident| $body:expr) => {
        struct $name;
        impl CmpOp for $name {
            #[inline(always)]
            fn cmp<E: Elem>($a: u64, $b: u64) -> bool {
                $body
            }
        }
    };
}

cmpop!(CEq, |a, b| a == b);
cmpop!(CNe, |a, b| a != b);
cmpop!(CLtu, |a, b| a < b);
cmpop!(CLt, |a, b| E::sext(a) < E::sext(b));
cmpop!(CLeu, |a, b| a <= b);
cmpop!(CLe, |a, b| E::sext(a) <= E::sext(b));
cmpop!(CGtu, |a, b| a > b);
cmpop!(CGt, |a, b| E::sext(a) > E::sext(b));

// ----------------------------------------------------------------- kernels --

type VAluFn = fn(&mut Machine, VReg, VReg, VSrc, bool) -> SimResult<()>;
type VMoveFn = fn(&mut Machine, VReg, VSrc) -> SimResult<()>;
type VMergeFn = fn(&mut Machine, VReg, VReg, VSrc) -> SimResult<()>;
type VCmpFn = fn(&mut Machine, VReg, VReg, VSrc, bool) -> SimResult<()>;
type VSlideFn = fn(&mut Machine, SlideKind, VReg, VReg, SlideOff, bool) -> SimResult<()>;
type VMemFn = fn(&mut Machine, VReg, XReg, bool) -> SimResult<()>;
type VMemStrideFn = fn(&mut Machine, VReg, XReg, XReg, bool) -> SimResult<()>;
type IdxMemFn = fn(&mut Machine, VReg, XReg, VReg, bool) -> SimResult<()>;

fn valu_exec<E: Elem, O: BinOp>(
    m: &mut Machine,
    vd: VReg,
    vs2: VReg,
    src: VSrc,
    vm: bool,
) -> SimResult<()> {
    match src {
        VSrc::V(vs1) => {
            m.check_data_op(vd, &[vs2, vs1], vm)?;
            let (_, vl) = m.vcfg()?;
            if vm {
                for i in 0..vl {
                    let a = E::get(m, vs2, i);
                    let b = E::get(m, vs1, i);
                    E::set(m, vd, i, O::apply::<E>(a, b));
                }
            } else {
                for i in 0..vl {
                    if m.active(false, i) {
                        let a = E::get(m, vs2, i);
                        let b = E::get(m, vs1, i);
                        E::set(m, vd, i, O::apply::<E>(a, b));
                    }
                }
            }
            Ok(())
        }
        VSrc::X(rs1) => {
            let b = m.xreg(rs1);
            valu_scalar::<E, O>(m, vd, vs2, b, vm)
        }
        VSrc::I(b) => valu_scalar::<E, O>(m, vd, vs2, b, vm),
    }
}

fn valu_scalar<E: Elem, O: BinOp>(
    m: &mut Machine,
    vd: VReg,
    vs2: VReg,
    b: u64,
    vm: bool,
) -> SimResult<()> {
    m.check_data_op(vd, &[vs2], vm)?;
    let (_, vl) = m.vcfg()?;
    let b = b & E::MAX;
    if vm {
        for i in 0..vl {
            let a = E::get(m, vs2, i);
            E::set(m, vd, i, O::apply::<E>(a, b));
        }
    } else {
        for i in 0..vl {
            if m.active(false, i) {
                let a = E::get(m, vs2, i);
                E::set(m, vd, i, O::apply::<E>(a, b));
            }
        }
    }
    Ok(())
}

fn vmove_exec<E: Elem>(m: &mut Machine, vd: VReg, src: VSrc) -> SimResult<()> {
    match src {
        VSrc::V(vs1) => {
            m.check_data_op(vd, &[vs1], true)?;
            let (_, vl) = m.vcfg()?;
            for i in 0..vl {
                let v = E::get(m, vs1, i);
                E::set(m, vd, i, v);
            }
        }
        VSrc::X(rs1) => {
            m.check_data_op(vd, &[], true)?;
            let (_, vl) = m.vcfg()?;
            let v = m.xreg(rs1) & E::MAX;
            for i in 0..vl {
                E::set(m, vd, i, v);
            }
        }
        VSrc::I(imm) => {
            m.check_data_op(vd, &[], true)?;
            let (_, vl) = m.vcfg()?;
            let v = imm & E::MAX;
            for i in 0..vl {
                E::set(m, vd, i, v);
            }
        }
    }
    Ok(())
}

fn vmerge_exec<E: Elem>(m: &mut Machine, vd: VReg, vs2: VReg, src: VSrc) -> SimResult<()> {
    match src {
        VSrc::V(vs1) => {
            m.check_data_op(vd, &[vs2, vs1], true)?;
            let (t, vl) = m.vcfg()?;
            if Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
                return Err(SimError::OverlapConstraint {
                    what: "vmerge writing v0 group",
                });
            }
            for i in 0..vl {
                let v = if m.mask_bit(VReg::V0, i) {
                    E::get(m, vs1, i)
                } else {
                    E::get(m, vs2, i)
                };
                E::set(m, vd, i, v);
            }
            Ok(())
        }
        VSrc::X(rs1) => {
            let x = m.xreg(rs1);
            vmerge_scalar::<E>(m, vd, vs2, x)
        }
        VSrc::I(x) => vmerge_scalar::<E>(m, vd, vs2, x),
    }
}

fn vmerge_scalar<E: Elem>(m: &mut Machine, vd: VReg, vs2: VReg, x: u64) -> SimResult<()> {
    m.check_data_op(vd, &[vs2], true)?;
    let (t, vl) = m.vcfg()?;
    if Machine::groups_overlap(vd, t.lmul.regs(), VReg::V0, 1) {
        return Err(SimError::OverlapConstraint {
            what: "vmerge writing v0 group",
        });
    }
    let x = x & E::MAX;
    for i in 0..vl {
        let v = if m.mask_bit(VReg::V0, i) {
            x
        } else {
            E::get(m, vs2, i)
        };
        E::set(m, vd, i, v);
    }
    Ok(())
}

fn vcmp_exec<E: Elem, C: CmpOp>(
    m: &mut Machine,
    vd: VReg,
    vs2: VReg,
    src: VSrc,
    vm: bool,
) -> SimResult<()> {
    let (t, vl) = m.vcfg()?;
    if let VSrc::V(vs1) = src {
        m.check_group(vs1, t.lmul)?;
    }
    m.check_group(vs2, t.lmul)?;
    let b_const = match src {
        VSrc::V(_) => 0,
        VSrc::X(rs1) => m.xreg(rs1) & E::MAX,
        VSrc::I(imm) => imm & E::MAX,
    };
    // Stage results in two packed bitsets (set, valid) so a destination
    // overlapping a source group is well-defined — same staging the legacy
    // interpreter does, but in a machine-resident scratch buffer instead of
    // a fresh Vec<Option<bool>> per compare.
    let words = vl.div_ceil(64) as usize;
    let mut scratch = std::mem::take(&mut m.cmp_scratch);
    scratch.clear();
    scratch.resize(2 * words, 0);
    let (set_bits, valid_bits) = scratch.split_at_mut(words);
    for i in 0..vl {
        if m.active(vm, i) {
            let a = E::get(m, vs2, i);
            let b = match src {
                VSrc::V(vs1) => E::get(m, vs1, i),
                _ => b_const,
            };
            valid_bits[(i / 64) as usize] |= 1u64 << (i % 64);
            if C::cmp::<E>(a, b) {
                set_bits[(i / 64) as usize] |= 1u64 << (i % 64);
            }
        }
    }
    for i in 0..vl {
        if valid_bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0 {
            let v = set_bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0;
            m.set_mask_bit(vd, i, v);
        }
    }
    m.cmp_scratch = scratch;
    Ok(())
}

fn vslide_exec<E: Elem>(
    m: &mut Machine,
    kind: SlideKind,
    vd: VReg,
    vs2: VReg,
    off: SlideOff,
    vm: bool,
) -> SimResult<()> {
    match kind {
        SlideKind::Up => {
            m.check_data_op(vd, &[vs2], vm)?;
            let (t, vl) = m.vcfg()?;
            if Machine::groups_overlap(vd, t.lmul.regs(), vs2, t.lmul.regs()) {
                return Err(SimError::OverlapConstraint {
                    what: "vslideup vd overlaps vs2",
                });
            }
            let start = off.value(m).min(vl as u64) as u32;
            // vd/vs2 overlap is forbidden above, so no snapshot is needed.
            for i in start..vl {
                if m.active(vm, i) {
                    let v = E::get(m, vs2, i - start);
                    E::set(m, vd, i, v);
                }
            }
        }
        SlideKind::Down => {
            m.check_data_op(vd, &[vs2], vm)?;
            let (t, vl) = m.vcfg()?;
            let vlmax = t.vlmax(m.vlen()) as u64;
            let offset = off.value(m);
            // Reads run ahead of writes (j = i + offset ≥ i, ascending i),
            // so even the ISA-legal vd == vs2 case needs no snapshot.
            // checked_add: an offset near u64::MAX is architecturally past
            // VLMAX (reads as 0), not a wrap back into range.
            for i in 0..vl {
                if m.active(vm, i) {
                    let v = match (i as u64).checked_add(offset) {
                        Some(j) if j < vlmax => E::get(m, vs2, j as u32),
                        _ => 0,
                    };
                    E::set(m, vd, i, v);
                }
            }
        }
        SlideKind::Up1 => {
            m.check_data_op(vd, &[vs2], vm)?;
            let (t, vl) = m.vcfg()?;
            if Machine::groups_overlap(vd, t.lmul.regs(), vs2, t.lmul.regs()) {
                return Err(SimError::OverlapConstraint {
                    what: "vslide1up vd overlaps vs2",
                });
            }
            let x = off.value(m) & E::MAX;
            if vl > 0 && m.active(vm, 0) {
                E::set(m, vd, 0, x);
            }
            for i in 1..vl {
                if m.active(vm, i) {
                    let v = E::get(m, vs2, i - 1);
                    E::set(m, vd, i, v);
                }
            }
        }
        SlideKind::Down1 => {
            m.check_data_op(vd, &[vs2], vm)?;
            let (_, vl) = m.vcfg()?;
            let x = off.value(m) & E::MAX;
            for i in 0..vl {
                if m.active(vm, i) {
                    let v = if i + 1 < vl { E::get(m, vs2, i + 1) } else { x };
                    E::set(m, vd, i, v);
                }
            }
        }
    }
    Ok(())
}

fn vload_unit<E: Elem>(m: &mut Machine, vd: VReg, rs1: XReg, vm: bool) -> SimResult<()> {
    let regs = m.emul_regs(E::SEW)?;
    m.check_emul_group(vd, regs)?;
    let (_, vl) = m.vcfg()?;
    let base = m.xreg(rs1);
    for i in 0..vl {
        if m.active(vm, i) {
            let addr = base.wrapping_add(i as u64 * E::BYTES as u64);
            let v = m.mem.load(addr, E::BYTES as u64)?;
            E::set(m, vd, i, v);
        }
    }
    Ok(())
}

fn vstore_unit<E: Elem>(m: &mut Machine, vs3: VReg, rs1: XReg, vm: bool) -> SimResult<()> {
    let regs = m.emul_regs(E::SEW)?;
    m.check_emul_group(vs3, regs)?;
    let (_, vl) = m.vcfg()?;
    let base = m.xreg(rs1);
    for i in 0..vl {
        if m.active(vm, i) {
            let addr = base.wrapping_add(i as u64 * E::BYTES as u64);
            let v = E::get(m, vs3, i);
            m.mem.store(addr, E::BYTES as u64, v)?;
        }
    }
    Ok(())
}

fn vload_strided<E: Elem>(
    m: &mut Machine,
    vd: VReg,
    rs1: XReg,
    rs2: XReg,
    vm: bool,
) -> SimResult<()> {
    let regs = m.emul_regs(E::SEW)?;
    m.check_emul_group(vd, regs)?;
    let (_, vl) = m.vcfg()?;
    let base = m.xreg(rs1);
    let stride = m.xreg(rs2);
    for i in 0..vl {
        if m.active(vm, i) {
            let addr = base.wrapping_add((i as u64).wrapping_mul(stride));
            let v = m.mem.load(addr, E::BYTES as u64)?;
            E::set(m, vd, i, v);
        }
    }
    Ok(())
}

fn vstore_strided<E: Elem>(
    m: &mut Machine,
    vs3: VReg,
    rs1: XReg,
    rs2: XReg,
    vm: bool,
) -> SimResult<()> {
    let regs = m.emul_regs(E::SEW)?;
    m.check_emul_group(vs3, regs)?;
    let (_, vl) = m.vcfg()?;
    let base = m.xreg(rs1);
    let stride = m.xreg(rs2);
    for i in 0..vl {
        if m.active(vm, i) {
            let addr = base.wrapping_add((i as u64).wrapping_mul(stride));
            let v = E::get(m, vs3, i);
            m.mem.store(addr, E::BYTES as u64, v)?;
        }
    }
    Ok(())
}

/// Indexed load: `ED` is the (vtype-cached) data SEW, `EI` the (static)
/// index EEW. The data element comes first so `by_sew!` can fill it.
fn vload_indexed<ED: Elem, EI: Elem>(
    m: &mut Machine,
    vd: VReg,
    rs1: XReg,
    vs2: VReg,
    vm: bool,
) -> SimResult<()> {
    let (t, vl) = m.vcfg()?;
    m.check_group(vd, t.lmul)?;
    let idx_regs = m.emul_regs(EI::SEW)?;
    m.check_emul_group(vs2, idx_regs)?;
    let base = m.xreg(rs1);
    for i in 0..vl {
        if m.active(vm, i) {
            let off = EI::get(m, vs2, i);
            let v = m.mem.load(base.wrapping_add(off), ED::BYTES as u64)?;
            ED::set(m, vd, i, v);
        }
    }
    Ok(())
}

fn vstore_indexed<ED: Elem, EI: Elem>(
    m: &mut Machine,
    vs3: VReg,
    rs1: XReg,
    vs2: VReg,
    vm: bool,
) -> SimResult<()> {
    let (t, vl) = m.vcfg()?;
    m.check_group(vs3, t.lmul)?;
    let idx_regs = m.emul_regs(EI::SEW)?;
    m.check_emul_group(vs2, idx_regs)?;
    let base = m.xreg(rs1);
    for i in 0..vl {
        if m.active(vm, i) {
            let off = EI::get(m, vs2, i);
            let v = ED::get(m, vs3, i);
            m.mem.store(base.wrapping_add(off), ED::BYTES as u64, v)?;
        }
    }
    Ok(())
}

// --------------------------------------------------------------- resolvers --

macro_rules! by_sew {
    ($sew:expr, $f:ident $(, $g:ty)*) => {
        match $sew {
            Sew::E8 => $f::<u8 $(, $g)*>,
            Sew::E16 => $f::<u16 $(, $g)*>,
            Sew::E32 => $f::<u32 $(, $g)*>,
            Sew::E64 => $f::<u64 $(, $g)*>,
        }
    };
}

fn resolve_valu(op: VAluOp, sew: Sew) -> VAluFn {
    macro_rules! k {
        ($o:ty) => {
            match sew {
                Sew::E8 => valu_exec::<u8, $o>,
                Sew::E16 => valu_exec::<u16, $o>,
                Sew::E32 => valu_exec::<u32, $o>,
                Sew::E64 => valu_exec::<u64, $o>,
            }
        };
    }
    match op {
        VAluOp::Add => k!(BAdd),
        VAluOp::Sub => k!(BSub),
        VAluOp::Rsub => k!(BRsub),
        VAluOp::Minu => k!(BMinu),
        VAluOp::Min => k!(BMin),
        VAluOp::Maxu => k!(BMaxu),
        VAluOp::Max => k!(BMax),
        VAluOp::And => k!(BAnd),
        VAluOp::Or => k!(BOr),
        VAluOp::Xor => k!(BXor),
        VAluOp::Sll => k!(BSll),
        VAluOp::Srl => k!(BSrl),
        VAluOp::Sra => k!(BSra),
        VAluOp::Mul => k!(BMul),
        VAluOp::Mulh => k!(BMulh),
        VAluOp::Mulhu => k!(BMulhu),
        VAluOp::Divu => k!(BDivu),
        VAluOp::Div => k!(BDiv),
        VAluOp::Remu => k!(BRemu),
        VAluOp::Rem => k!(BRem),
    }
}

fn resolve_vcmp(cond: VCmp, sew: Sew) -> VCmpFn {
    macro_rules! k {
        ($c:ty) => {
            match sew {
                Sew::E8 => vcmp_exec::<u8, $c>,
                Sew::E16 => vcmp_exec::<u16, $c>,
                Sew::E32 => vcmp_exec::<u32, $c>,
                Sew::E64 => vcmp_exec::<u64, $c>,
            }
        };
    }
    match cond {
        VCmp::Eq => k!(CEq),
        VCmp::Ne => k!(CNe),
        VCmp::Ltu => k!(CLtu),
        VCmp::Lt => k!(CLt),
        VCmp::Leu => k!(CLeu),
        VCmp::Le => k!(CLe),
        VCmp::Gtu => k!(CGtu),
        VCmp::Gt => k!(CGt),
    }
}

fn resolve_vmove(sew: Sew) -> VMoveFn {
    by_sew!(sew, vmove_exec)
}

fn resolve_vmerge(sew: Sew) -> VMergeFn {
    by_sew!(sew, vmerge_exec)
}

fn resolve_vslide(sew: Sew) -> VSlideFn {
    by_sew!(sew, vslide_exec)
}

fn resolve_vload_unit(eew: Sew) -> VMemFn {
    by_sew!(eew, vload_unit)
}

fn resolve_vstore_unit(eew: Sew) -> VMemFn {
    by_sew!(eew, vstore_unit)
}

fn resolve_vload_strided(eew: Sew) -> VMemStrideFn {
    by_sew!(eew, vload_strided)
}

fn resolve_vstore_strided(eew: Sew) -> VMemStrideFn {
    by_sew!(eew, vstore_strided)
}

fn resolve_vload_indexed(eew: Sew, sew: Sew) -> IdxMemFn {
    macro_rules! inner {
        ($ei:ty) => {
            by_sew!(sew, vload_indexed, $ei)
        };
    }
    match eew {
        Sew::E8 => inner!(u8),
        Sew::E16 => inner!(u16),
        Sew::E32 => inner!(u32),
        Sew::E64 => inner!(u64),
    }
}

fn resolve_vstore_indexed(eew: Sew, sew: Sew) -> IdxMemFn {
    macro_rules! inner {
        ($ei:ty) => {
            by_sew!(sew, vstore_indexed, $ei)
        };
    }
    match eew {
        Sew::E8 => inner!(u8),
        Sew::E16 => inner!(u16),
        Sew::E32 => inner!(u32),
        Sew::E64 => inner!(u64),
    }
}

// ---------------------------------------------------------------- lowering --

/// The executable form of one instruction. Everything resolvable without
/// machine state is resolved here; `Generic` routes the remaining families
/// through the legacy dispatcher (with the class still pre-computed).
#[derive(Debug)]
enum OpKind {
    Lui {
        rd: XReg,
        value: u64,
    },
    Auipc {
        rd: XReg,
        value: u64,
    },
    Jal {
        rd: XReg,
        link: u64,
        to: Target,
    },
    Jalr {
        rd: XReg,
        rs1: XReg,
        offset: u64,
        link: u64,
    },
    Branch {
        taken: fn(u64, u64) -> bool,
        rs1: XReg,
        rs2: XReg,
        to: Target,
    },
    Load {
        width: MemWidth,
        signed: bool,
        rd: XReg,
        rs1: XReg,
        offset: u64,
    },
    Store {
        width: MemWidth,
        rs2: XReg,
        rs1: XReg,
        offset: u64,
    },
    Alu {
        f: fn(u64, u64) -> u64,
        rd: XReg,
        rs1: XReg,
        rhs: AluRhs,
    },
    Csrr {
        rd: XReg,
        csr: VCsr,
    },
    Ecall,
    Ebreak {
        pc: u64,
    },
    VCfg {
        idx: u32,
    },
    VAlu {
        f: KCache<VAluFn>,
        op: VAluOp,
        vd: VReg,
        vs2: VReg,
        src: VSrc,
        vm: bool,
    },
    VMove {
        f: KCache<VMoveFn>,
        vd: VReg,
        src: VSrc,
    },
    VMerge {
        f: KCache<VMergeFn>,
        vd: VReg,
        vs2: VReg,
        src: VSrc,
    },
    VCmp {
        f: KCache<VCmpFn>,
        cond: VCmp,
        vd: VReg,
        vs2: VReg,
        src: VSrc,
        vm: bool,
    },
    VSlide {
        f: KCache<VSlideFn>,
        kind: SlideKind,
        vd: VReg,
        vs2: VReg,
        off: SlideOff,
        vm: bool,
    },
    VLoadUnit {
        f: VMemFn,
        vd: VReg,
        rs1: XReg,
        vm: bool,
    },
    VStoreUnit {
        f: VMemFn,
        vs3: VReg,
        rs1: XReg,
        vm: bool,
    },
    VLoadStrided {
        f: VMemStrideFn,
        vd: VReg,
        rs1: XReg,
        rs2: XReg,
        vm: bool,
    },
    VStoreStrided {
        f: VMemStrideFn,
        vs3: VReg,
        rs1: XReg,
        rs2: XReg,
        vm: bool,
    },
    VLoadIndexed {
        f: KCache<IdxMemFn>,
        eew: Sew,
        vd: VReg,
        rs1: XReg,
        vs2: VReg,
        vm: bool,
    },
    VStoreIndexed {
        f: KCache<IdxMemFn>,
        eew: Sew,
        vs3: VReg,
        rs1: XReg,
        vs2: VReg,
        vm: bool,
    },
    VLoadWhole {
        nregs: u8,
        vd: VReg,
        rs1: XReg,
    },
    VStoreWhole {
        nregs: u8,
        vs3: VReg,
        rs1: XReg,
    },
    Generic {
        idx: u32,
    },
}

fn lower(idx: usize, ins: &Instr, len: usize) -> OpKind {
    use Instr::*;
    let pc = (idx * 4) as u64;
    match *ins {
        Lui { rd, imm20 } => OpKind::Lui {
            rd,
            value: ((imm20 as i64) << 12) as u64,
        },
        Auipc { rd, imm20 } => OpKind::Auipc {
            rd,
            value: pc.wrapping_add(((imm20 as i64) << 12) as u64),
        },
        Jal { rd, offset } => OpKind::Jal {
            rd,
            link: pc.wrapping_add(4),
            to: resolve_target(pc.wrapping_add(offset as i64 as u64), len),
        },
        Jalr { rd, rs1, offset } => OpKind::Jalr {
            rd,
            rs1,
            offset: offset as i64 as u64,
            link: pc.wrapping_add(4),
        },
        Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => OpKind::Branch {
            taken: branch_fn(cond),
            rs1,
            rs2,
            to: resolve_target(pc.wrapping_add(offset as i64 as u64), len),
        },
        Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => OpKind::Load {
            width,
            signed,
            rd,
            rs1,
            offset: offset as i64 as u64,
        },
        Store {
            width,
            rs2,
            rs1,
            offset,
        } => OpKind::Store {
            width,
            rs2,
            rs1,
            offset: offset as i64 as u64,
        },
        OpImm { op, rd, rs1, imm } => OpKind::Alu {
            f: alu_fn(op),
            rd,
            rs1,
            rhs: AluRhs::Imm(imm as i64 as u64),
        },
        Op { op, rd, rs1, rs2 } => OpKind::Alu {
            f: alu_fn(op),
            rd,
            rs1,
            rhs: AluRhs::Reg(rs2),
        },
        Csrr { rd, csr } => OpKind::Csrr { rd, csr },
        Ecall => OpKind::Ecall,
        Ebreak => OpKind::Ebreak { pc },
        Vsetvli { .. } | Vsetivli { .. } | Vsetvl { .. } => OpKind::VCfg { idx: idx as u32 },
        VOpVV {
            op,
            vd,
            vs2,
            vs1,
            vm,
        } => OpKind::VAlu {
            f: KCache::new(),
            op,
            vd,
            vs2,
            src: VSrc::V(vs1),
            vm,
        },
        VOpVX {
            op,
            vd,
            vs2,
            rs1,
            vm,
        } => OpKind::VAlu {
            f: KCache::new(),
            op,
            vd,
            vs2,
            src: VSrc::X(rs1),
            vm,
        },
        VOpVI {
            op,
            vd,
            vs2,
            imm,
            vm,
        } => OpKind::VAlu {
            f: KCache::new(),
            op,
            vd,
            vs2,
            src: VSrc::I(if op.imm_is_unsigned() {
                imm as u8 as u64
            } else {
                imm as i64 as u64
            }),
            vm,
        },
        VMvVV { vd, vs1 } => OpKind::VMove {
            f: KCache::new(),
            vd,
            src: VSrc::V(vs1),
        },
        VMvVX { vd, rs1 } => OpKind::VMove {
            f: KCache::new(),
            vd,
            src: VSrc::X(rs1),
        },
        VMvVI { vd, imm } => OpKind::VMove {
            f: KCache::new(),
            vd,
            src: VSrc::I(imm as i64 as u64),
        },
        VMergeVVM { vd, vs2, vs1 } => OpKind::VMerge {
            f: KCache::new(),
            vd,
            vs2,
            src: VSrc::V(vs1),
        },
        VMergeVXM { vd, vs2, rs1 } => OpKind::VMerge {
            f: KCache::new(),
            vd,
            vs2,
            src: VSrc::X(rs1),
        },
        VMergeVIM { vd, vs2, imm } => OpKind::VMerge {
            f: KCache::new(),
            vd,
            vs2,
            src: VSrc::I(imm as i64 as u64),
        },
        VCmpVV {
            cond,
            vd,
            vs2,
            vs1,
            vm,
        } => OpKind::VCmp {
            f: KCache::new(),
            cond,
            vd,
            vs2,
            src: VSrc::V(vs1),
            vm,
        },
        VCmpVX {
            cond,
            vd,
            vs2,
            rs1,
            vm,
        } => OpKind::VCmp {
            f: KCache::new(),
            cond,
            vd,
            vs2,
            src: VSrc::X(rs1),
            vm,
        },
        VCmpVI {
            cond,
            vd,
            vs2,
            imm,
            vm,
        } => OpKind::VCmp {
            f: KCache::new(),
            cond,
            vd,
            vs2,
            src: VSrc::I(imm as i64 as u64),
            vm,
        },
        VSlideUpVX { vd, vs2, rs1, vm } => OpKind::VSlide {
            f: KCache::new(),
            kind: SlideKind::Up,
            vd,
            vs2,
            off: SlideOff::X(rs1),
            vm,
        },
        VSlideUpVI { vd, vs2, uimm, vm } => OpKind::VSlide {
            f: KCache::new(),
            kind: SlideKind::Up,
            vd,
            vs2,
            off: SlideOff::I(uimm as u64),
            vm,
        },
        VSlideDownVX { vd, vs2, rs1, vm } => OpKind::VSlide {
            f: KCache::new(),
            kind: SlideKind::Down,
            vd,
            vs2,
            off: SlideOff::X(rs1),
            vm,
        },
        VSlideDownVI { vd, vs2, uimm, vm } => OpKind::VSlide {
            f: KCache::new(),
            kind: SlideKind::Down,
            vd,
            vs2,
            off: SlideOff::I(uimm as u64),
            vm,
        },
        VSlide1Up { vd, vs2, rs1, vm } => OpKind::VSlide {
            f: KCache::new(),
            kind: SlideKind::Up1,
            vd,
            vs2,
            off: SlideOff::X(rs1),
            vm,
        },
        VSlide1Down { vd, vs2, rs1, vm } => OpKind::VSlide {
            f: KCache::new(),
            kind: SlideKind::Down1,
            vd,
            vs2,
            off: SlideOff::X(rs1),
            vm,
        },
        VLoad { eew, vd, rs1, vm } => OpKind::VLoadUnit {
            f: resolve_vload_unit(eew),
            vd,
            rs1,
            vm,
        },
        VStore { eew, vs3, rs1, vm } => OpKind::VStoreUnit {
            f: resolve_vstore_unit(eew),
            vs3,
            rs1,
            vm,
        },
        VLoadStrided {
            eew,
            vd,
            rs1,
            rs2,
            vm,
        } => OpKind::VLoadStrided {
            f: resolve_vload_strided(eew),
            vd,
            rs1,
            rs2,
            vm,
        },
        VStoreStrided {
            eew,
            vs3,
            rs1,
            rs2,
            vm,
        } => OpKind::VStoreStrided {
            f: resolve_vstore_strided(eew),
            vs3,
            rs1,
            rs2,
            vm,
        },
        VLoadIndexed {
            eew,
            ordered: _,
            vd,
            rs1,
            vs2,
            vm,
        } => OpKind::VLoadIndexed {
            f: KCache::new(),
            eew,
            vd,
            rs1,
            vs2,
            vm,
        },
        VStoreIndexed {
            eew,
            ordered: _,
            vs3,
            rs1,
            vs2,
            vm,
        } => OpKind::VStoreIndexed {
            f: KCache::new(),
            eew,
            vs3,
            rs1,
            vs2,
            vm,
        },
        VLoadWhole { nregs, vd, rs1 } => OpKind::VLoadWhole { nregs, vd, rs1 },
        VStoreWhole { nregs, vs3, rs1 } => OpKind::VStoreWhole { nregs, vs3, rs1 },
        // Reductions, mask group, gathers/compress, mask loads/stores, and
        // scalar-element moves stay on the legacy dispatcher.
        _ => OpKind::Generic { idx: idx as u32 },
    }
}

// --------------------------------------------------------------- execution --

impl OpKind {
    /// Execute one micro-op. `key` is the driver's current [`vtype_key`].
    #[inline(always)]
    fn execute(&self, m: &mut Machine, plan: &CompiledPlan, key: u8) -> SimResult<Flow> {
        match self {
            OpKind::Lui { rd, value } => {
                m.set_xreg(*rd, *value);
                Ok(Flow::Seq)
            }
            OpKind::Auipc { rd, value } => {
                m.set_xreg(*rd, *value);
                Ok(Flow::Seq)
            }
            OpKind::Jal { rd, link, to } => {
                m.set_xreg(*rd, *link);
                Ok(to.flow())
            }
            OpKind::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                // Target before link write: handles rd == rs1.
                let target = m.xreg(*rs1).wrapping_add(*offset) & !1;
                m.set_xreg(*rd, *link);
                Ok(resolve_dynamic(target, plan.ops.len()))
            }
            OpKind::Branch {
                taken,
                rs1,
                rs2,
                to,
            } => {
                if taken(m.xreg(*rs1), m.xreg(*rs2)) {
                    Ok(to.flow())
                } else {
                    Ok(Flow::Seq)
                }
            }
            OpKind::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let addr = m.xreg(*rs1).wrapping_add(*offset);
                let raw = m.mem.load(addr, width.bytes())?;
                let v = if *signed {
                    match width {
                        MemWidth::B => raw as u8 as i8 as i64 as u64,
                        MemWidth::H => raw as u16 as i16 as i64 as u64,
                        MemWidth::W => raw as u32 as i32 as i64 as u64,
                        MemWidth::D => raw,
                    }
                } else {
                    raw
                };
                m.set_xreg(*rd, v);
                Ok(Flow::Seq)
            }
            OpKind::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = m.xreg(*rs1).wrapping_add(*offset);
                m.mem.store(addr, width.bytes(), m.xreg(*rs2))?;
                Ok(Flow::Seq)
            }
            OpKind::Alu { f, rd, rs1, rhs } => {
                let b = match rhs {
                    AluRhs::Reg(r) => m.xreg(*r),
                    AluRhs::Imm(v) => *v,
                };
                m.set_xreg(*rd, f(m.xreg(*rs1), b));
                Ok(Flow::Seq)
            }
            OpKind::Csrr { rd, csr } => {
                let v = match csr {
                    VCsr::Vl => m.vl() as u64,
                    VCsr::Vtype => match m.vtype() {
                        Some(t) => t.to_bits(),
                        None => 1 << 63, // vill
                    },
                    VCsr::Vlenb => m.vlenb() as u64,
                };
                m.set_xreg(*rd, v);
                Ok(Flow::Seq)
            }
            OpKind::Ecall => Ok(Flow::Halt),
            OpKind::Ebreak { pc } => Err(SimError::Breakpoint { pc: *pc }),
            OpKind::VCfg { idx } => {
                let i = *idx as usize;
                m.exec_inner((i as u64) * 4, &plan.source.instrs[i])?;
                Ok(Flow::Cfg)
            }
            OpKind::VAlu {
                f,
                op,
                vd,
                vs2,
                src,
                vm,
            } => {
                let k = f.lookup(key, |sew| resolve_valu(*op, sew))?;
                k(m, *vd, *vs2, *src, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VMove { f, vd, src } => {
                let k = f.lookup(key, resolve_vmove)?;
                k(m, *vd, *src)?;
                Ok(Flow::Seq)
            }
            OpKind::VMerge { f, vd, vs2, src } => {
                let k = f.lookup(key, resolve_vmerge)?;
                k(m, *vd, *vs2, *src)?;
                Ok(Flow::Seq)
            }
            OpKind::VCmp {
                f,
                cond,
                vd,
                vs2,
                src,
                vm,
            } => {
                let k = f.lookup(key, |sew| resolve_vcmp(*cond, sew))?;
                k(m, *vd, *vs2, *src, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VSlide {
                f,
                kind,
                vd,
                vs2,
                off,
                vm,
            } => {
                let k = f.lookup(key, resolve_vslide)?;
                k(m, *kind, *vd, *vs2, *off, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VLoadUnit { f, vd, rs1, vm } => {
                f(m, *vd, *rs1, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VStoreUnit { f, vs3, rs1, vm } => {
                f(m, *vs3, *rs1, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VLoadStrided {
                f,
                vd,
                rs1,
                rs2,
                vm,
            } => {
                f(m, *vd, *rs1, *rs2, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VStoreStrided {
                f,
                vs3,
                rs1,
                rs2,
                vm,
            } => {
                f(m, *vs3, *rs1, *rs2, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VLoadIndexed {
                f,
                eew,
                vd,
                rs1,
                vs2,
                vm,
            } => {
                let k = f.lookup(key, |sew| resolve_vload_indexed(*eew, sew))?;
                k(m, *vd, *rs1, *vs2, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VStoreIndexed {
                f,
                eew,
                vs3,
                rs1,
                vs2,
                vm,
            } => {
                let k = f.lookup(key, |sew| resolve_vstore_indexed(*eew, sew))?;
                k(m, *vs3, *rs1, *vs2, *vm)?;
                Ok(Flow::Seq)
            }
            OpKind::VLoadWhole { nregs, vd, rs1 } => {
                m.vload_whole_fast(*nregs, *vd, *rs1)?;
                Ok(Flow::Seq)
            }
            OpKind::VStoreWhole { nregs, vs3, rs1 } => {
                m.vstore_whole_fast(*nregs, *vs3, *rs1)?;
                Ok(Flow::Seq)
            }
            OpKind::Generic { idx } => {
                let i = *idx as usize;
                match m.exec_inner((i as u64) * 4, &plan.source.instrs[i])? {
                    Control::Next => Ok(Flow::Seq),
                    Control::Jump(t) => Ok(resolve_dynamic(t, plan.ops.len())),
                    Control::Halt => Ok(Flow::Halt),
                }
            }
        }
    }
}

impl Machine {
    /// Run a compiled plan from its first instruction until `ecall`, a trap,
    /// or `fuel` retired instructions. Architecturally identical to
    /// [`Machine::run_legacy`] on the plan's source program.
    pub fn run_plan(&mut self, plan: &CompiledPlan, fuel: u64) -> SimResult<RunReport> {
        self.run_plan_from(plan, fuel, 0)
    }

    /// [`Machine::run_plan`] starting at byte address `start_pc` — the
    /// resume half of checkpointing, mirroring
    /// [`Machine::run_legacy_from`]. A misaligned `start_pc` (a pause
    /// that landed on a pending bad jump) reproduces the
    /// [`SimError::BadControlFlow`] trap the uninterrupted run would have
    /// raised.
    pub fn run_plan_from(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        start_pc: u64,
    ) -> SimResult<RunReport> {
        let before = self.counters.total();
        let mut key = vtype_key(self);
        let mut at: usize = (start_pc / 4) as usize;
        // A retired jump to an invalid target traps on the *next* iteration,
        // after the fuel check — exactly the legacy loop's ordering.
        let mut bad: Option<u64> = (!start_pc.is_multiple_of(4)).then_some(start_pc);
        loop {
            if self.counters.total() - before >= fuel {
                self.stop_pc = bad.unwrap_or((at as u64) * 4);
                return Err(SimError::FuelExhausted { fuel });
            }
            if let Some(target) = bad {
                return Err(SimError::BadControlFlow { target });
            }
            let Some(op) = plan.ops.get(at) else {
                return Err(SimError::BadControlFlow {
                    target: (at as u64) * 4,
                });
            };
            let flow = op.kind.execute(self, plan, key)?;
            self.counters.retire_class(op.class);
            match flow {
                Flow::Seq => at += 1,
                Flow::To(i) => at = i,
                Flow::Cfg => {
                    key = vtype_key(self);
                    at += 1;
                }
                Flow::BadJump(t) => bad = Some(t),
                Flow::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: (at as u64) * 4,
                    })
                }
            }
        }
    }

    /// [`Machine::run_plan`] with [`crate::DEFAULT_FUEL`].
    pub fn run_plan_default(&mut self, plan: &CompiledPlan) -> SimResult<RunReport> {
        self.run_plan(plan, crate::program::DEFAULT_FUEL)
    }

    /// Like [`Machine::run_plan`], but reports every retired instruction to
    /// `sink`. Events carry the plan's pre-computed class; event assembly
    /// and delivery ordering match the legacy traced loop (assembled before
    /// execution, delivered after a successful retire).
    pub fn run_plan_traced(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        sink: &mut dyn TraceSink,
    ) -> SimResult<RunReport> {
        sink.launch(&plan.source);
        let before = self.counters.total();
        let mut key = vtype_key(self);
        let mut at: usize = 0;
        let mut bad: Option<u64> = None;
        loop {
            let seq = self.counters.total() - before;
            if seq >= fuel {
                self.stop_pc = bad.unwrap_or((at as u64) * 4);
                return Err(SimError::FuelExhausted { fuel });
            }
            if let Some(target) = bad {
                return Err(SimError::BadControlFlow { target });
            }
            let Some(op) = plan.ops.get(at) else {
                return Err(SimError::BadControlFlow {
                    target: (at as u64) * 4,
                });
            };
            let instr = &plan.source.instrs[at];
            let event = RetireEvent {
                pc: (at as u64) * 4,
                instr,
                class: op.class,
                vl: self.vl(),
                vtype: self.vtype(),
                mem: self.mem_footprint(instr),
                seq,
            };
            let flow = op.kind.execute(self, plan, key)?;
            self.counters.retire_class(op.class);
            sink.retire(&event);
            match flow {
                Flow::Seq => at += 1,
                Flow::To(i) => at = i,
                Flow::Cfg => {
                    key = vtype_key(self);
                    at += 1;
                }
                Flow::BadJump(t) => bad = Some(t),
                Flow::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: (at as u64) * 4,
                    })
                }
            }
        }
    }

    /// Like [`Machine::run_plan`], but calls `hook(pc, instr)` before each
    /// instruction executes.
    pub fn run_plan_hooked(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        mut hook: impl FnMut(u64, &Instr),
    ) -> SimResult<RunReport> {
        let before = self.counters.total();
        let mut key = vtype_key(self);
        let mut at: usize = 0;
        let mut bad: Option<u64> = None;
        loop {
            if self.counters.total() - before >= fuel {
                self.stop_pc = bad.unwrap_or((at as u64) * 4);
                return Err(SimError::FuelExhausted { fuel });
            }
            if let Some(target) = bad {
                return Err(SimError::BadControlFlow { target });
            }
            let Some(op) = plan.ops.get(at) else {
                return Err(SimError::BadControlFlow {
                    target: (at as u64) * 4,
                });
            };
            hook((at as u64) * 4, &plan.source.instrs[at]);
            let flow = op.kind.execute(self, plan, key)?;
            self.counters.retire_class(op.class);
            match flow {
                Flow::Seq => at += 1,
                Flow::To(i) => at = i,
                Flow::Cfg => {
                    key = vtype_key(self);
                    at += 1;
                }
                Flow::BadJump(t) => bad = Some(t),
                Flow::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: (at as u64) * 4,
                    })
                }
            }
        }
    }

    /// Like [`Machine::run_plan`], but consults a [`crate::FaultHook`]
    /// before each instruction executes. Architecturally identical to
    /// [`Machine::run_legacy_faulted`] with the same hook: the hook is
    /// consulted at the same points, a forced trap aborts without retiring,
    /// and a replacement instruction executes (and is counted) by its own
    /// class through the generic [`Machine::exec`] path on both engines.
    pub fn run_plan_faulted(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        hook: &mut dyn crate::FaultHook,
    ) -> SimResult<RunReport> {
        let before = self.counters.total();
        let mut key = vtype_key(self);
        let mut at: usize = 0;
        let mut bad: Option<u64> = None;
        loop {
            if self.counters.total() - before >= fuel {
                self.stop_pc = bad.unwrap_or((at as u64) * 4);
                return Err(SimError::FuelExhausted { fuel });
            }
            if let Some(target) = bad {
                return Err(SimError::BadControlFlow { target });
            }
            let Some(op) = plan.ops.get(at) else {
                return Err(SimError::BadControlFlow {
                    target: (at as u64) * 4,
                });
            };
            let pc = (at as u64) * 4;
            let instr = &plan.source.instrs[at];
            let flow = match hook.before(pc, instr, self.mem_footprint(instr).as_ref()) {
                crate::FaultAction::Pass => {
                    let flow = op.kind.execute(self, plan, key)?;
                    self.counters.retire_class(op.class);
                    flow
                }
                crate::FaultAction::Trap(e) => return Err(e),
                crate::FaultAction::Replace(r) => {
                    // The replacement goes through the generic exec path
                    // (which retires it under the *replacement*'s class —
                    // exactly what the legacy loop does). It may be a
                    // vsetvli, so the specialization key is refreshed
                    // unconditionally.
                    let ctl = self.exec(pc, &r)?;
                    key = vtype_key(self);
                    match ctl {
                        Control::Next => Flow::Seq,
                        Control::Jump(t) => resolve_dynamic(t, plan.ops.len()),
                        Control::Halt => Flow::Halt,
                    }
                }
            };
            match flow {
                Flow::Seq => at += 1,
                Flow::To(i) => at = i,
                Flow::Cfg => {
                    key = vtype_key(self);
                    at += 1;
                }
                Flow::BadJump(t) => bad = Some(t),
                Flow::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: (at as u64) * 4,
                    })
                }
            }
        }
    }
}

// Declared *after* the `by_sew!`/`binop!` macro definitions so the child
// module sees them through textual macro scoping.
pub(crate) mod fused;

// PLAN_TESTS
