//! Fault-injection hooks.
//!
//! A [`FaultHook`] observes execution the way a [`crate::TraceSink`] does,
//! but *before* each instruction executes, and it can intervene: let the
//! instruction through, force a trap, or substitute another instruction
//! (modelling a corrupted fetch). The ordinary run loops
//! ([`crate::Machine::run_plan`], [`crate::Machine::run_legacy`]) do not
//! know hooks exist — only the dedicated `*_faulted` drivers consult one,
//! so the unfaulted path stays zero-cost.
//!
//! The contract that makes injection *deterministic* (and therefore
//! differential-testable across engines): the hook is consulted exactly
//! once per instruction the run loop attempts, in retirement order, with
//! the same pre-execution memory footprint both engines would compute. A
//! hook that decides from `(call count, instruction, footprint)` alone —
//! like `rvv-fault`'s seeded plans — fires at the same point on the plan
//! engine and the legacy interpreter, which is what lets the chaos suite
//! assert the two engines fail identically.

use crate::error::SimError;
use crate::trace::MemAccess;
use rvv_isa::Instr;

/// What a [`FaultHook`] decided for one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute the fetched instruction normally.
    Pass,
    /// Do not execute; raise this trap instead. The instruction is not
    /// retired and not counted — exactly like an architectural trap.
    Trap(SimError),
    /// Execute this instruction in place of the fetched one (a corrupted
    /// fetch that still decodes). It retires and is counted under the
    /// *replacement*'s class on both engines.
    Replace(Instr),
}

/// Pre-execution observer/interceptor of a faulted run.
///
/// Implementors are typically seeded plans (see `rvv-fault`): pure
/// functions of their own counters, never of wall-clock or host state, so
/// a faulted run is exactly as reproducible as an unfaulted one.
pub trait FaultHook {
    /// Called once per instruction the run loop is about to execute.
    ///
    /// `pc` is the byte PC, `instr` the fetched instruction, and `mem` its
    /// pre-execution memory footprint (`None` for non-memory
    /// instructions) — enough to count reads/writes and fire at the Nth
    /// access without the hook re-deriving addressing.
    fn before(&mut self, pc: u64, instr: &Instr, mem: Option<&MemAccess>) -> FaultAction;
}

impl<H: FaultHook + ?Sized> FaultHook for &mut H {
    fn before(&mut self, pc: u64, instr: &Instr, mem: Option<&MemAccess>) -> FaultAction {
        (**self).before(pc, instr, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use crate::program::Program;
    use rvv_isa::{AluOp, XReg};

    /// Trap unconditionally at the Nth consulted instruction.
    struct TrapAt {
        n: u64,
        seen: u64,
    }

    impl FaultHook for TrapAt {
        fn before(&mut self, _pc: u64, _instr: &Instr, _mem: Option<&MemAccess>) -> FaultAction {
            self.seen += 1;
            if self.seen == self.n {
                FaultAction::Trap(SimError::InjectedFault {
                    what: "test",
                    seq: self.n,
                })
            } else {
                FaultAction::Pass
            }
        }
    }

    fn program() -> Program {
        Program::new(
            "p",
            vec![
                Instr::OpImm {
                    op: AluOp::Add,
                    rd: XReg::new(5),
                    rs1: XReg::ZERO,
                    imm: 1,
                },
                Instr::OpImm {
                    op: AluOp::Add,
                    rd: XReg::new(5),
                    rs1: XReg::new(5),
                    imm: 2,
                },
                Instr::Ecall,
            ],
        )
    }

    #[test]
    fn engines_fault_identically() {
        let cfg = MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        };
        for n in 1..=4u64 {
            let plan = crate::plan::CompiledPlan::compile(program());
            let mut a = Machine::new(cfg);
            let mut b = Machine::new(cfg);
            let ra = a.run_plan_faulted(&plan, 1000, &mut TrapAt { n, seen: 0 });
            let rb = b.run_legacy_faulted(&program(), 1000, &mut TrapAt { n, seen: 0 });
            assert_eq!(ra, rb, "fault at instruction {n}");
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.xreg(XReg::new(5)), b.xreg(XReg::new(5)));
            if n <= 3 {
                assert!(matches!(
                    ra,
                    Err(SimError::InjectedFault { what: "test", seq }) if seq == n
                ));
            } else {
                // The hook never fired: same result as an unfaulted run.
                assert_eq!(ra.unwrap().retired, 3);
            }
        }
    }

    /// A replaced instruction executes (and is counted) on both engines.
    struct ReplaceFirst {
        done: bool,
    }

    impl FaultHook for ReplaceFirst {
        fn before(&mut self, _pc: u64, _instr: &Instr, _mem: Option<&MemAccess>) -> FaultAction {
            if self.done {
                FaultAction::Pass
            } else {
                self.done = true;
                FaultAction::Replace(Instr::OpImm {
                    op: AluOp::Add,
                    rd: XReg::new(5),
                    rs1: XReg::ZERO,
                    imm: 40,
                })
            }
        }
    }

    #[test]
    fn replacement_executes_on_both_engines() {
        let cfg = MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        };
        let plan = crate::plan::CompiledPlan::compile(program());
        let mut a = Machine::new(cfg);
        let mut b = Machine::new(cfg);
        let ra = a
            .run_plan_faulted(&plan, 1000, &mut ReplaceFirst { done: false })
            .unwrap();
        let rb = b
            .run_legacy_faulted(&program(), 1000, &mut ReplaceFirst { done: false })
            .unwrap();
        assert_eq!(ra, rb);
        // x5 = 40 (replacement), then += 2 from the untouched second instr.
        assert_eq!(a.xreg(XReg::new(5)), 42);
        assert_eq!(b.xreg(XReg::new(5)), 42);
        assert_eq!(a.counters, b.counters);
    }
}
