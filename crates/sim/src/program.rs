//! Programs and the run loop.
//!
//! A [`Program`] is a flat sequence of instructions; the program counter is
//! a byte address (`index × 4`) so that branch offsets behave exactly like
//! the binary encoding. Instructions live outside simulated data memory
//! (a Harvard-style split): the paper's experiments never use self-modifying
//! code, and the split keeps kernels from trampling their own text.

use crate::error::{SimError, SimResult};
use crate::exec::Control;
use crate::machine::Machine;
use crate::trace::{RetireEvent, TraceSink};
use rvv_isa::{encode, Instr, InstrClass};
use std::fmt;

/// Default fuel for [`Machine::run`]: generous enough for the paper's
/// largest experiment (N = 10⁶ split radix sort ≈ 2×10⁸ instructions) with
/// an order of magnitude to spare.
pub const DEFAULT_FUEL: u64 = 4_000_000_000;

/// An executable program.
#[derive(Debug, Clone)]
pub struct Program {
    /// A label for traces and error messages.
    pub name: String,
    /// The instructions; instruction `i` sits at byte address `4·i`.
    pub instrs: Vec<Instr>,
    /// Symbol marks: `(byte address, label)` pairs sorted by address, used
    /// by profilers to attribute PCs to regions of the generated code
    /// (strip loop, spill prologue, …). Purely advisory — execution ignores
    /// them.
    pub marks: Vec<(u64, String)>,
}

impl Program {
    /// Wrap an instruction sequence.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Program {
        Program {
            name: name.into(),
            instrs,
            marks: Vec::new(),
        }
    }

    /// Attach a symbol mark at byte address `pc`. Marks must be added in
    /// ascending address order (debug-asserted) so lookups can bisect.
    pub fn add_mark(&mut self, pc: u64, label: impl Into<String>) {
        debug_assert!(
            self.marks.last().is_none_or(|(p, _)| *p <= pc),
            "marks must be added in ascending PC order"
        );
        self.marks.push((pc, label.into()));
    }

    /// The innermost mark covering `pc`: the last mark at or before it.
    pub fn symbol_for(&self, pc: u64) -> Option<&str> {
        let i = self.marks.partition_point(|(p, _)| *p <= pc);
        i.checked_sub(1).map(|i| self.marks[i].1.as_str())
    }

    /// Length in instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Assemble to machine code: the true 32-bit little-endian encodings.
    /// The simulator executes the typed form, but this is byte-for-byte what
    /// a real RV64GCV target would fetch, and tests decode it back.
    pub fn assemble(&self) -> Result<Vec<u8>, rvv_isa::EncodeError> {
        let mut out = Vec::with_capacity(self.instrs.len() * 4);
        for i in &self.instrs {
            out.extend_from_slice(&encode(i)?.to_le_bytes());
        }
        Ok(out)
    }

    /// Load a program from raw RISC-V machine code (32-bit little-endian
    /// words) — the inverse of [`Program::assemble`], and what the
    /// `sim-run` CLI feeds the simulator.
    ///
    /// # Errors
    /// Reports the word index and decode failure for the first instruction
    /// outside the modelled subset; trailing bytes that do not form a whole
    /// word are rejected.
    pub fn from_machine_code(name: impl Into<String>, bytes: &[u8]) -> Result<Program, String> {
        if !bytes.len().is_multiple_of(4) {
            return Err(format!(
                "{} bytes is not a whole number of instructions",
                bytes.len()
            ));
        }
        let mut instrs = Vec::with_capacity(bytes.len() / 4);
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let w = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
            let instr = rvv_isa::decode(w)
                .map_err(|e| format!("instruction {i} (byte offset {:#x}): {e}", i * 4))?;
            instrs.push(instr);
        }
        Ok(Program::new(name, instrs))
    }
}

impl fmt::Display for Program {
    /// Disassembly listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        let mut next_mark = 0;
        for (i, instr) in self.instrs.iter().enumerate() {
            while next_mark < self.marks.len() && self.marks[next_mark].0 <= (i * 4) as u64 {
                writeln!(f, "<{}>:", self.marks[next_mark].1)?;
                next_mark += 1;
            }
            writeln!(f, "{:6x}:  {instr}", i * 4)?;
        }
        Ok(())
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Dynamic instructions retired by this run (not cumulative machine
    /// counters).
    pub retired: u64,
    /// PC of the halting `ecall`.
    pub halt_pc: u64,
}

impl Machine {
    /// Run `program` from its first instruction until `ecall`, a trap, or
    /// `fuel` retired instructions.
    ///
    /// This compiles the program to a [`crate::CompiledPlan`] and drives it
    /// ([`Machine::run_plan`]). Callers that run the same program repeatedly
    /// should compile once and call `run_plan` directly to amortise the
    /// decode cost.
    pub fn run(&mut self, program: &Program, fuel: u64) -> SimResult<RunReport> {
        let plan = crate::plan::CompiledPlan::compile(program.clone());
        self.run_plan(&plan, fuel)
    }

    /// [`Machine::run`] with [`DEFAULT_FUEL`].
    pub fn run_default(&mut self, program: &Program) -> SimResult<RunReport> {
        self.run(program, DEFAULT_FUEL)
    }

    /// Like [`Machine::run`], but reports every retired instruction to
    /// `sink` (see [`TraceSink`]). Compiles a plan and delegates to
    /// [`Machine::run_plan_traced`]; event assembly and delivery ordering
    /// match [`Machine::run_legacy_traced`] exactly.
    pub fn run_traced(
        &mut self,
        program: &Program,
        fuel: u64,
        sink: &mut dyn TraceSink,
    ) -> SimResult<RunReport> {
        let plan = crate::plan::CompiledPlan::compile(program.clone());
        self.run_plan_traced(&plan, fuel, sink)
    }

    /// Like [`Machine::run`], but calls `hook(pc, instr)` before executing
    /// each instruction — an execution trace for debugging kernels and for
    /// tools that want per-instruction visibility (capture what you need
    /// from pc/instr and the counters).
    pub fn run_hooked(
        &mut self,
        program: &Program,
        fuel: u64,
        hook: impl FnMut(u64, &Instr),
    ) -> SimResult<RunReport> {
        let plan = crate::plan::CompiledPlan::compile(program.clone());
        self.run_plan_hooked(&plan, fuel, hook)
    }

    /// The reference interpreter: decode-classify-dispatch every step, no
    /// pre-compiled plan. Kept as the semantic baseline — the differential
    /// tests assert that [`Machine::run_plan`] is architecturally
    /// indistinguishable from this loop, and the host-throughput harness
    /// measures both in one process.
    pub fn run_legacy(&mut self, program: &Program, fuel: u64) -> SimResult<RunReport> {
        self.run_legacy_from(program, fuel, 0)
    }

    /// [`Machine::run_legacy`] starting at byte address `start_pc` instead
    /// of 0 — the resume half of checkpointing. A run that paused with
    /// [`SimError::FuelExhausted`] records the pause point in
    /// [`Machine::stop_pc`]; continuing from it with fresh fuel retires
    /// exactly the instructions an uninterrupted run would have, including
    /// reproducing a pending bad-jump trap if the pause landed on one.
    pub fn run_legacy_from(
        &mut self,
        program: &Program,
        fuel: u64,
        start_pc: u64,
    ) -> SimResult<RunReport> {
        let before = self.counters.total();
        let len = program.instrs.len() as u64;
        let mut pc: u64 = start_pc;
        loop {
            if self.counters.total() - before >= fuel {
                self.stop_pc = pc;
                return Err(SimError::FuelExhausted { fuel });
            }
            if !pc.is_multiple_of(4) || pc / 4 >= len {
                return Err(SimError::BadControlFlow { target: pc });
            }
            let instr = &program.instrs[(pc / 4) as usize];
            match self.exec(pc, instr)? {
                Control::Next => pc += 4,
                Control::Jump(target) => pc = target,
                Control::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: pc,
                    })
                }
            }
        }
    }

    /// [`Machine::run_legacy`] with per-retire reporting to `sink`. The
    /// event is assembled *before* the instruction executes — so memory
    /// footprints see the pre-execution base registers — and delivered
    /// *after* it retires successfully; a trapping instruction is neither
    /// counted nor reported.
    pub fn run_legacy_traced(
        &mut self,
        program: &Program,
        fuel: u64,
        sink: &mut dyn TraceSink,
    ) -> SimResult<RunReport> {
        sink.launch(program);
        let before = self.counters.total();
        let len = program.instrs.len() as u64;
        let mut pc: u64 = 0;
        loop {
            let seq = self.counters.total() - before;
            if seq >= fuel {
                self.stop_pc = pc;
                return Err(SimError::FuelExhausted { fuel });
            }
            if !pc.is_multiple_of(4) || pc / 4 >= len {
                return Err(SimError::BadControlFlow { target: pc });
            }
            let instr = &program.instrs[(pc / 4) as usize];
            let event = RetireEvent {
                pc,
                instr,
                class: InstrClass::of(instr),
                vl: self.vl(),
                vtype: self.vtype(),
                mem: self.mem_footprint(instr),
                seq,
            };
            let ctl = self.exec(pc, instr)?;
            sink.retire(&event);
            match ctl {
                Control::Next => pc += 4,
                Control::Jump(target) => pc = target,
                Control::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: pc,
                    })
                }
            }
        }
    }

    /// [`Machine::run_legacy`] with a [`crate::FaultHook`] consulted before
    /// each instruction executes. The reference semantics for
    /// [`Machine::run_plan_faulted`] — the chaos suite asserts both engines
    /// produce identical results (and identical failures) under the same
    /// hook.
    pub fn run_legacy_faulted(
        &mut self,
        program: &Program,
        fuel: u64,
        hook: &mut dyn crate::FaultHook,
    ) -> SimResult<RunReport> {
        let before = self.counters.total();
        let len = program.instrs.len() as u64;
        let mut pc: u64 = 0;
        loop {
            if self.counters.total() - before >= fuel {
                self.stop_pc = pc;
                return Err(SimError::FuelExhausted { fuel });
            }
            if !pc.is_multiple_of(4) || pc / 4 >= len {
                return Err(SimError::BadControlFlow { target: pc });
            }
            let instr = &program.instrs[(pc / 4) as usize];
            let ctl = match hook.before(pc, instr, self.mem_footprint(instr).as_ref()) {
                crate::FaultAction::Pass => self.exec(pc, instr)?,
                crate::FaultAction::Trap(e) => return Err(e),
                crate::FaultAction::Replace(r) => self.exec(pc, &r)?,
            };
            match ctl {
                Control::Next => pc += 4,
                Control::Jump(target) => pc = target,
                Control::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: pc,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use rvv_isa::{AluOp, BranchCond, XReg};

    fn m() -> Machine {
        Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        })
    }

    /// A hand-assembled countdown loop:
    ///   li t0, 5        (addi x5, x0, 5)
    /// loop:
    ///   addi x5, x5, -1
    ///   bne x5, x0, loop
    ///   ecall
    fn countdown() -> Program {
        Program::new(
            "countdown",
            vec![
                Instr::OpImm {
                    op: AluOp::Add,
                    rd: XReg::new(5),
                    rs1: XReg::ZERO,
                    imm: 5,
                },
                Instr::OpImm {
                    op: AluOp::Add,
                    rd: XReg::new(5),
                    rs1: XReg::new(5),
                    imm: -1,
                },
                Instr::Branch {
                    cond: BranchCond::Ne,
                    rs1: XReg::new(5),
                    rs2: XReg::ZERO,
                    offset: -4,
                },
                Instr::Ecall,
            ],
        )
    }

    #[test]
    fn loop_runs_and_counts() {
        let mut m = m();
        let r = m.run_default(&countdown()).unwrap();
        // 1 init + 5 × (addi + bne) + ecall = 12.
        assert_eq!(r.retired, 12);
        assert_eq!(m.xreg(XReg::new(5)), 0);
        assert_eq!(r.halt_pc, 12);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut m = m();
        // Infinite loop: jal x0, 0.
        let p = Program::new(
            "spin",
            vec![Instr::Jal {
                rd: XReg::ZERO,
                offset: 0,
            }],
        );
        let r = m.run(&p, 1000);
        assert!(matches!(r, Err(SimError::FuelExhausted { fuel: 1000 })));
    }

    #[test]
    fn falling_off_the_end_is_bad_control_flow() {
        let mut m = m();
        let p = Program::new(
            "no-halt",
            vec![Instr::OpImm {
                op: AluOp::Add,
                rd: XReg::new(5),
                rs1: XReg::ZERO,
                imm: 1,
            }],
        );
        assert!(matches!(
            m.run_default(&p),
            Err(SimError::BadControlFlow { .. })
        ));
    }

    #[test]
    fn wild_jump_is_bad_control_flow() {
        let mut m = m();
        let p = Program::new(
            "wild",
            vec![Instr::Jal {
                rd: XReg::ZERO,
                offset: 0x1000,
            }],
        );
        assert!(matches!(
            m.run_default(&p),
            Err(SimError::BadControlFlow { target: 0x1000 })
        ));
    }

    #[test]
    fn ebreak_traps_with_pc() {
        let mut m = m();
        let p = Program::new(
            "brk",
            vec![
                Instr::OpImm {
                    op: AluOp::Add,
                    rd: XReg::new(5),
                    rs1: XReg::ZERO,
                    imm: 1,
                },
                Instr::Ebreak,
            ],
        );
        assert!(matches!(
            m.run_default(&p),
            Err(SimError::Breakpoint { pc: 4 })
        ));
    }

    #[test]
    fn assemble_then_decode_matches() {
        let p = countdown();
        let bytes = p.assemble().unwrap();
        assert_eq!(bytes.len(), p.len() * 4);
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let w = u32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(rvv_isa::decode(w).unwrap(), p.instrs[i]);
        }
    }

    #[test]
    fn hooked_run_sees_every_retired_instruction() {
        let mut m = m();
        let mut trace = Vec::new();
        let r = m
            .run_hooked(&countdown(), 1000, |pc, i| trace.push((pc, i.to_string())))
            .unwrap();
        assert_eq!(trace.len() as u64, r.retired);
        assert_eq!(trace[0].1, "addi x5, x0, 5");
        assert_eq!(trace.last().unwrap().1, "ecall");
        // The loop body repeats five times.
        assert_eq!(trace.iter().filter(|(pc, _)| *pc == 4).count(), 5);
    }

    #[test]
    fn traced_run_reports_every_retire_and_matches_untraced() {
        use crate::trace::{RetireEvent, TraceSink};
        struct Recorder {
            events: Vec<(u64, u64, String)>,
            launches: Vec<String>,
        }
        impl TraceSink for Recorder {
            fn retire(&mut self, e: &RetireEvent<'_>) {
                self.events.push((e.seq, e.pc, e.instr.to_string()));
            }
            fn launch(&mut self, p: &Program) {
                self.launches.push(p.name.clone());
            }
        }
        let mut sink = Recorder {
            events: Vec::new(),
            launches: Vec::new(),
        };
        let mut traced = m();
        let r = traced.run_traced(&countdown(), 1000, &mut sink).unwrap();
        let mut plain = m();
        let r2 = plain.run_default(&countdown()).unwrap();
        // Same report, same architectural outcome, same counters.
        assert_eq!(r, r2);
        assert_eq!(traced.xreg(XReg::new(5)), plain.xreg(XReg::new(5)));
        assert_eq!(traced.counters, plain.counters);
        // Every retired instruction was reported, in order.
        assert_eq!(sink.launches, vec!["countdown".to_string()]);
        assert_eq!(sink.events.len() as u64, r.retired);
        for (i, (seq, _, _)) in sink.events.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
        assert_eq!(sink.events[0].2, "addi x5, x0, 5");
        assert_eq!(sink.events.last().unwrap().2, "ecall");
    }

    #[test]
    fn marks_symbolicate_and_display() {
        let mut p = countdown();
        p.add_mark(0, "init");
        p.add_mark(4, "loop");
        p.add_mark(12, "exit");
        assert_eq!(p.symbol_for(0), Some("init"));
        assert_eq!(p.symbol_for(4), Some("loop"));
        assert_eq!(p.symbol_for(8), Some("loop"));
        assert_eq!(p.symbol_for(12), Some("exit"));
        assert_eq!(p.symbol_for(100), Some("exit"));
        assert_eq!(Program::new("bare", vec![]).symbol_for(0), None);
        let text = p.to_string();
        assert!(text.contains("<loop>:"), "{text}");
    }

    #[test]
    fn machine_code_loader_roundtrips() {
        let p = countdown();
        let bytes = p.assemble().unwrap();
        let back = Program::from_machine_code("reloaded", &bytes).unwrap();
        assert_eq!(back.instrs, p.instrs);
        // A ragged byte count is rejected.
        assert!(Program::from_machine_code("bad", &bytes[..6]).is_err());
        // Undecodable words report their position.
        let mut corrupt = bytes.clone();
        corrupt[4..8].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let err = Program::from_machine_code("bad", &corrupt).unwrap_err();
        assert!(err.contains("instruction 1"), "{err}");
    }

    #[test]
    fn plan_and_legacy_loops_agree() {
        let mut planned = m();
        let mut legacy = m();
        let r1 = planned.run_default(&countdown()).unwrap();
        let r2 = legacy.run_legacy(&countdown(), DEFAULT_FUEL).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(planned.xreg(XReg::new(5)), legacy.xreg(XReg::new(5)));
        assert_eq!(planned.counters, legacy.counters);
    }

    #[test]
    fn display_disassembles() {
        let text = countdown().to_string();
        assert!(text.contains("countdown:"));
        assert!(text.contains("bne x5, x0, -4"));
    }
}
