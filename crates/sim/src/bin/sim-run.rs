//! `sim-run` — a Spike-like command-line front end for the simulator.
//!
//! Executes a flat binary of RV64IM+RVV machine code (as produced by
//! `Program::assemble` or any assembler targeting the modelled subset) and
//! reports the dynamic instruction counts the paper's methodology is built
//! on.
//!
//! ```text
//! sim-run program.bin [--vlen 1024] [--mem-mib 64] [--a0 N] .. [--a7 N]
//!                     [--disasm] [--dump-u32 ADDR COUNT]
//! ```
//!
//! The program's `a0..a7` are set from the flags, `sp` points at the top of
//! memory, and execution ends at `ecall`. Exit prints the total retired
//! instructions, the per-class histogram, and `a0`.

use rvv_isa::{InstrClass, XReg};
use rvv_sim::{Machine, MachineConfig, Program};

fn usage() -> ! {
    eprintln!(
        "usage: sim-run <program.bin> [--vlen N] [--mem-mib N] [--a0 N] .. [--a7 N] \
         [--disasm] [--dump-u32 ADDR COUNT]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let path = &args[0];
    let mut vlen = 1024u32;
    let mut mem_mib = 64usize;
    let mut regs: Vec<(u8, u64)> = Vec::new();
    let mut disasm = false;
    let mut dump: Option<(u64, usize)> = None;
    let mut i = 1;
    let parse = |s: &str| -> u64 {
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).unwrap_or_else(|_| usage())
        } else {
            s.parse().unwrap_or_else(|_| usage())
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--vlen" => {
                vlen = parse(&args[i + 1]) as u32;
                i += 2;
            }
            "--mem-mib" => {
                mem_mib = parse(&args[i + 1]) as usize;
                i += 2;
            }
            "--disasm" => {
                disasm = true;
                i += 1;
            }
            "--dump-u32" => {
                dump = Some((parse(&args[i + 1]), parse(&args[i + 2]) as usize));
                i += 3;
            }
            a if a.starts_with("--a") => {
                let n: u8 = a[3..].parse().unwrap_or_else(|_| usage());
                if n >= 8 {
                    usage();
                }
                regs.push((n, parse(&args[i + 1])));
                i += 2;
            }
            _ => usage(),
        }
    }

    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("sim-run: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let program = Program::from_machine_code(path.clone(), &bytes).unwrap_or_else(|e| {
        eprintln!("sim-run: {e}");
        std::process::exit(1);
    });
    if disasm {
        print!("{program}");
    }

    let mut m = Machine::new(MachineConfig {
        vlen,
        mem_bytes: mem_mib << 20,
    });
    for &(n, v) in &regs {
        m.set_xreg(XReg::arg(n), v);
    }
    m.set_xreg(XReg::SP, (mem_mib as u64) << 20);

    match m.run_default(&program) {
        Ok(report) => {
            println!("halted at pc {:#x}", report.halt_pc);
            println!("retired: {}", report.retired);
            for c in InstrClass::ALL {
                let n = m.counters.class(c);
                if n > 0 {
                    println!("  {:12} {}", c.label(), n);
                }
            }
            println!("a0 = {:#x}", m.xreg(XReg::arg(0)));
            if let Some((addr, count)) = dump {
                println!("mem[{addr:#x}..]: {:?}", m.mem.read_u32_slice(addr, count));
            }
        }
        Err(e) => {
            eprintln!("sim-run: trap: {e}");
            std::process::exit(1);
        }
    }
}
