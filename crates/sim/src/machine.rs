//! Machine state: scalar register file, vector register file, vector CSRs,
//! memory, and counters.
//!
//! ## Vector register file layout
//!
//! All 32 vector registers live in one contiguous byte array of
//! `32 × VLENB`. Element `i` of the group based at register `r` with element
//! size `e` bytes sits at byte offset `r·VLENB + i·e`; because registers are
//! contiguous, LMUL grouping falls out of the layout with no special cases.
//! Mask bit `i` of register `r` is bit `i % 8` of byte `r·VLENB + i/8`
//! (RVV 1.0 mask layout). A mask always fits in a single register: the
//! largest `vl` is `8·VLEN/8 = VLEN` bits.

use crate::counters::Counters;
use crate::error::{SimError, SimResult};
use crate::memory::Memory;
use crate::snapshot::MachineSnapshot;
use rvv_isa::{Lmul, Sew, VReg, VType, XReg};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Vector register length in bits. Must be a power of two in
    /// `[64, 65536]`. The paper evaluates 128, 256, 512, and 1024.
    pub vlen: u32,
    /// Memory size in bytes.
    pub mem_bytes: usize,
}

impl MachineConfig {
    /// The paper's headline configuration: VLEN=1024, 64 MiB of memory.
    pub fn paper_default() -> MachineConfig {
        MachineConfig {
            vlen: 1024,
            mem_bytes: 64 << 20,
        }
    }

    /// Same memory, different VLEN.
    pub fn with_vlen(vlen: u32) -> MachineConfig {
        MachineConfig {
            vlen,
            ..MachineConfig::paper_default()
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_default()
    }
}

/// Diagnostic tally of fused-tier activity ([`Machine::run_fused`]).
///
/// Deliberately **not** part of [`Counters`] or [`MachineSnapshot`]: the
/// dispatch-independence invariant requires counters, traces, and snapshots
/// to be bit-identical across engines, and fusion activity necessarily
/// differs (it is zero on the other two tiers). These numbers exist for
/// coverage goldens and perf forensics only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Fused windows entered (superinstruction fast path taken).
    pub windows: u64,
    /// Instructions retired through fused kernels (sum of window lengths).
    pub ops: u64,
}

/// The complete architectural state of the simulated hart.
#[derive(Debug, Clone)]
pub struct Machine {
    vlen: u32,
    vlenb: u32,
    xregs: [u64; 32],
    vregs: Box<[u8]>,
    vtype: Option<VType>,
    vl: u32,
    /// Simulated memory (public: the host environment stages inputs and
    /// reads back outputs directly).
    pub mem: Memory,
    /// Dynamic instruction counters (public: benches snapshot and diff).
    pub counters: Counters,
    /// Fused-tier activity tally (see [`FusedStats`]). Zeroed by
    /// [`Machine::reset_cpu`] and [`Machine::restore`]; never snapshotted.
    pub fused_stats: FusedStats,
    /// Reusable staging buffer for compare-to-mask kernels (two packed
    /// bitsets). Not architectural state — only here so the hot path never
    /// allocates.
    pub(crate) cmp_scratch: Vec<u64>,
    /// PC at which the last run loop paused with
    /// [`SimError::FuelExhausted`] — the precise resume point for
    /// `run_plan_from`/`run_legacy_from`. Captured by snapshots.
    pub(crate) stop_pc: u64,
}

impl Machine {
    /// Build a machine. Panics if `vlen` is not a power of two in
    /// `[64, 65536]` — that is a harness bug, not a simulated-program error.
    pub fn new(cfg: MachineConfig) -> Machine {
        assert!(
            cfg.vlen.is_power_of_two() && (64..=65536).contains(&cfg.vlen),
            "VLEN must be a power of two in [64, 65536], got {}",
            cfg.vlen
        );
        let vlenb = cfg.vlen / 8;
        Machine {
            vlen: cfg.vlen,
            vlenb,
            xregs: [0; 32],
            vregs: vec![0u8; (32 * vlenb) as usize].into_boxed_slice(),
            vtype: None,
            vl: 0,
            mem: Memory::new(cfg.mem_bytes),
            counters: Counters::new(),
            fused_stats: FusedStats::default(),
            cmp_scratch: Vec::new(),
            stop_pc: 0,
        }
    }

    /// PC at which the last run loop paused with fuel exhaustion — pass
    /// it to `run_plan_from`/`run_legacy_from` to continue exactly where
    /// the run stopped. Zero until a run has paused.
    #[inline]
    pub fn stop_pc(&self) -> u64 {
        self.stop_pc
    }

    /// VLEN in bits.
    #[inline]
    pub fn vlen(&self) -> u32 {
        self.vlen
    }

    /// VLEN in bytes (`VLENB`).
    #[inline]
    pub fn vlenb(&self) -> u32 {
        self.vlenb
    }

    /// Current `vl`.
    #[inline]
    pub fn vl(&self) -> u32 {
        self.vl
    }

    /// Current decoded `vtype`, or `None` when `vill` is set.
    #[inline]
    pub fn vtype(&self) -> Option<VType> {
        self.vtype
    }

    /// Read a scalar register (`x0` reads as 0).
    #[inline]
    pub fn xreg(&self, r: XReg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.xregs[r.num() as usize]
        }
    }

    /// Write a scalar register (writes to `x0` are discarded).
    #[inline]
    pub fn set_xreg(&mut self, r: XReg, v: u64) {
        if !r.is_zero() {
            self.xregs[r.num() as usize] = v;
        }
    }

    // ------------------------------------------------------------ vectors --

    /// Require a legal vector configuration; returns `(vtype, vl)`.
    #[inline]
    pub fn vcfg(&self) -> SimResult<(VType, u32)> {
        match self.vtype {
            Some(t) => Ok((t, self.vl)),
            None => Err(SimError::Vill),
        }
    }

    /// Set the vector configuration directly (used by `vsetvli` execution
    /// and by tests).
    pub(crate) fn set_vcfg(&mut self, vtype: Option<VType>, vl: u32) {
        self.vtype = vtype;
        self.vl = vl;
    }

    /// `VLMAX` under the current configuration.
    pub fn vlmax(&self) -> SimResult<u32> {
        let (t, _) = self.vcfg()?;
        Ok(t.vlmax(self.vlen))
    }

    /// Check LMUL alignment of a group base register.
    #[inline]
    pub fn check_group(&self, reg: VReg, lmul: Lmul) -> SimResult<()> {
        if lmul.aligned(reg.num()) {
            Ok(())
        } else {
            Err(SimError::MisalignedGroup { reg, lmul })
        }
    }

    /// Do two register groups overlap?
    #[inline]
    pub fn groups_overlap(a: VReg, a_regs: u32, b: VReg, b_regs: u32) -> bool {
        let (a0, a1) = (a.num() as u32, a.num() as u32 + a_regs);
        let (b0, b1) = (b.num() as u32, b.num() as u32 + b_regs);
        a0 < b1 && b0 < a1
    }

    /// Read element `i` of the group based at `base`, width `sew`,
    /// zero-extended.
    #[inline]
    pub fn velem(&self, base: VReg, i: u32, sew: Sew) -> u64 {
        let off = (base.num() as u32 * self.vlenb + i * sew.bytes()) as usize;
        let mut v = 0u64;
        for (k, b) in self.vregs[off..off + sew.bytes() as usize]
            .iter()
            .enumerate()
        {
            v |= (*b as u64) << (8 * k);
        }
        v
    }

    /// Write element `i` of the group based at `base` (value truncated to
    /// `sew`).
    #[inline]
    pub fn set_velem(&mut self, base: VReg, i: u32, sew: Sew, value: u64) {
        let off = (base.num() as u32 * self.vlenb + i * sew.bytes()) as usize;
        for k in 0..sew.bytes() as usize {
            self.vregs[off + k] = (value >> (8 * k)) as u8;
        }
    }

    /// Read mask bit `i` of register `reg`.
    #[inline]
    pub fn mask_bit(&self, reg: VReg, i: u32) -> bool {
        let off = (reg.num() as u32 * self.vlenb + i / 8) as usize;
        self.vregs[off] & (1 << (i % 8)) != 0
    }

    /// Write mask bit `i` of register `reg`.
    #[inline]
    pub fn set_mask_bit(&mut self, reg: VReg, i: u32, v: bool) {
        let off = (reg.num() as u32 * self.vlenb + i / 8) as usize;
        if v {
            self.vregs[off] |= 1 << (i % 8);
        } else {
            self.vregs[off] &= !(1 << (i % 8));
        }
    }

    /// Is element `i` active under mask polarity `vm` (true = unmasked)?
    #[inline]
    pub fn active(&self, vm: bool, i: u32) -> bool {
        vm || self.mask_bit(VReg::V0, i)
    }

    /// Raw bytes of register `reg` (one register, not a group) — used by
    /// whole-register moves and by tests.
    pub fn vreg_bytes(&self, reg: VReg) -> &[u8] {
        let off = (reg.num() as u32 * self.vlenb) as usize;
        &self.vregs[off..off + self.vlenb as usize]
    }

    /// Overwrite raw bytes of register `reg`. Panics if `data` is not
    /// exactly `VLENB` bytes.
    pub fn set_vreg_bytes(&mut self, reg: VReg, data: &[u8]) {
        assert_eq!(
            data.len(),
            self.vlenb as usize,
            "vreg write must be VLENB bytes"
        );
        let off = (reg.num() as u32 * self.vlenb) as usize;
        self.vregs[off..off + self.vlenb as usize].copy_from_slice(data);
    }

    /// The whole vector register file as one contiguous byte slice
    /// (`32 × VLENB`, register `r` at offset `r·VLENB`). The plan engine's
    /// SEW-monomorphized kernels index it with fixed-size
    /// `from_le_bytes`/`to_le_bytes` instead of per-byte loops.
    #[inline]
    pub(crate) fn vreg_store(&self) -> &[u8] {
        &self.vregs
    }

    /// Mutable view of the whole vector register file.
    #[inline]
    pub(crate) fn vreg_store_mut(&mut self) -> &mut [u8] {
        &mut self.vregs
    }

    /// Split borrow: memory and the vector register file at once, so a
    /// fused kernel can bulk-copy between them without an intermediate
    /// buffer. The two are disjoint fields; the borrow checker just cannot
    /// see that through two `&mut self` method calls.
    #[inline]
    pub(crate) fn mem_and_vregs(&mut self) -> (&mut Memory, &mut [u8]) {
        (&mut self.mem, &mut self.vregs)
    }

    /// Whole-register load (`vl<nregs>r.v`) without the per-register
    /// `to_vec` copy of the legacy interpreter: memory and the register file
    /// are disjoint fields, so bytes move in one `copy_from_slice` per
    /// register. Trap behaviour matches `exec` exactly.
    pub(crate) fn vload_whole_fast(&mut self, nregs: u8, vd: VReg, rs1: XReg) -> SimResult<()> {
        if !(vd.num() as u32).is_multiple_of(nregs as u32) {
            return Err(SimError::UnsupportedEmul {
                what: "whole-register vd not aligned to register count",
            });
        }
        let base = self.xreg(rs1);
        let vlenb = self.vlenb as u64;
        for r in 0..nregs {
            let bytes = self.mem.read_bytes(base + r as u64 * vlenb, vlenb)?;
            let off = ((vd.num() + r) as u32 * self.vlenb) as usize;
            self.vregs[off..off + vlenb as usize].copy_from_slice(bytes);
        }
        Ok(())
    }

    /// Whole-register store (`vs<nregs>r.v`), allocation-free counterpart of
    /// [`Machine::vload_whole_fast`].
    pub(crate) fn vstore_whole_fast(&mut self, nregs: u8, vs3: VReg, rs1: XReg) -> SimResult<()> {
        if !(vs3.num() as u32).is_multiple_of(nregs as u32) {
            return Err(SimError::UnsupportedEmul {
                what: "whole-register vs3 not aligned to register count",
            });
        }
        let base = self.xreg(rs1);
        let vlenb = self.vlenb as u64;
        for r in 0..nregs {
            let off = ((vs3.num() + r) as u32 * self.vlenb) as usize;
            self.mem.write_bytes(
                base + r as u64 * vlenb,
                &self.vregs[off..off + vlenb as usize],
            )?;
        }
        Ok(())
    }

    /// Reset architectural state (registers, vtype, counters) but keep
    /// memory contents.
    pub fn reset_cpu(&mut self) {
        self.xregs = [0; 32];
        self.vregs.fill(0);
        self.vtype = None;
        self.vl = 0;
        self.counters.reset();
        self.fused_stats = FusedStats::default();
        self.stop_pc = 0;
    }

    /// Capture the complete architectural state. Memory cost is
    /// O(dirty pages) — see [`Memory::snapshot`].
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            vlen: self.vlen,
            xregs: self.xregs,
            vregs: self.vregs.clone(),
            vtype: self.vtype,
            vl: self.vl,
            counters: self.counters.clone(),
            stop_pc: self.stop_pc,
            mem: self.mem.snapshot(),
        }
    }

    /// Restore the state captured by [`Machine::snapshot`]: afterwards
    /// this machine is bit-for-bit indistinguishable from the
    /// snapshotted one (`cmp_scratch` excepted — it is not architectural
    /// and is rebuilt on demand).
    ///
    /// # Panics
    /// If the snapshot came from a machine with a different VLEN or
    /// memory size — restoring across shapes would silently corrupt
    /// state, so it is a harness bug.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        assert_eq!(
            snap.vlen, self.vlen,
            "snapshot is from a VLEN={} machine, this one is VLEN={}",
            snap.vlen, self.vlen
        );
        assert_eq!(
            snap.vregs.len(),
            self.vregs.len(),
            "vector register file size mismatch"
        );
        self.xregs = snap.xregs;
        self.vregs.copy_from_slice(&snap.vregs);
        self.vtype = snap.vtype;
        self.vl = snap.vl;
        self.counters = snap.counters.clone();
        self.fused_stats = FusedStats::default();
        self.stop_pc = snap.stop_pc;
        self.mem.restore(&snap.mem);
        self.cmp_scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired() {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_xreg(XReg::ZERO, 42);
        assert_eq!(m.xreg(XReg::ZERO), 0);
        m.set_xreg(XReg::new(5), 42);
        assert_eq!(m.xreg(XReg::new(5)), 42);
    }

    #[test]
    fn element_layout_spans_group_registers() {
        // VLEN=128 -> 4 e32 elements per register. Element 5 of an LMUL=2
        // group based at v2 lives in v3.
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_velem(VReg::new(2), 5, Sew::E32, 0xdead_beef);
        assert_eq!(m.velem(VReg::new(2), 5, Sew::E32), 0xdead_beef);
        assert_eq!(m.velem(VReg::new(3), 1, Sew::E32), 0xdead_beef);
    }

    #[test]
    fn truncation_on_write() {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_velem(VReg::new(1), 0, Sew::E8, 0x1ff);
        assert_eq!(m.velem(VReg::new(1), 0, Sew::E8), 0xff);
        // Neighbouring element untouched.
        assert_eq!(m.velem(VReg::new(1), 1, Sew::E8), 0);
    }

    #[test]
    fn mask_bits() {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        m.set_mask_bit(VReg::V0, 0, true);
        m.set_mask_bit(VReg::V0, 9, true);
        assert!(m.mask_bit(VReg::V0, 0));
        assert!(!m.mask_bit(VReg::V0, 1));
        assert!(m.mask_bit(VReg::V0, 9));
        m.set_mask_bit(VReg::V0, 9, false);
        assert!(!m.mask_bit(VReg::V0, 9));
        assert!(m.active(true, 3));
        assert!(m.active(false, 0));
        assert!(!m.active(false, 3));
    }

    #[test]
    fn overlap_detection() {
        assert!(Machine::groups_overlap(VReg::new(8), 4, VReg::new(10), 2));
        assert!(!Machine::groups_overlap(VReg::new(8), 2, VReg::new(10), 2));
        assert!(Machine::groups_overlap(VReg::new(0), 1, VReg::new(0), 8));
    }

    #[test]
    fn vill_until_configured() {
        let m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 4096,
        });
        assert!(matches!(m.vcfg(), Err(SimError::Vill)));
    }

    #[test]
    #[should_panic]
    fn bad_vlen_panics() {
        let _ = Machine::new(MachineConfig {
            vlen: 100,
            mem_bytes: 4096,
        });
    }
}
