//! Retire-time tracing hooks.
//!
//! A [`TraceSink`] observes every architecturally retired instruction of a
//! [`Machine::run_traced`](crate::Machine::run_traced) run, together with
//! the vector configuration it executed under and (for memory operations)
//! the data footprint it touched. The plain
//! [`Machine::run`](crate::Machine::run) loop does not know sinks exist —
//! untraced execution pays nothing for this module.
//!
//! Sinks are deliberately *aggregating* consumers: the simulator hands each
//! event by reference and keeps nothing, so a profiler that only bumps
//! histograms adds a few arithmetic ops per retired instruction and no
//! allocation. The optional phase hooks let a host runtime (the `scanvec`
//! environment) bracket groups of kernel launches — "this range of retired
//! instructions was the split step of radix pass 7" — which is what turns a
//! flat instruction stream into an attributable profile.

use crate::machine::Machine;
use crate::program::Program;
use rvv_isa::{Instr, InstrClass, VType};

/// The memory footprint of one retired load or store.
///
/// For unit-stride and whole-register accesses this is the exact byte range
/// `[addr, addr + bytes)`. For strided and indexed accesses `addr` is the
/// base register and `bytes` the *data volume* (`vl × EEW`), not the span —
/// enough for traffic accounting and for classifying the access by the
/// region its base points into, which is all the profilers here need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Base effective address of the access.
    pub addr: u64,
    /// Bytes of data moved.
    pub bytes: u64,
    /// `true` for stores, `false` for loads.
    pub store: bool,
}

/// Everything a sink learns about one retired instruction.
///
/// `vl` and `vtype` are the configuration the instruction *executed under*
/// (the pre-execution state — for a `vsetvli` that is the previous
/// configuration, not the one it installs).
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent<'a> {
    /// Byte PC of the instruction.
    pub pc: u64,
    /// The instruction itself.
    pub instr: &'a Instr,
    /// Its class (precomputed; sinks almost always bin by it).
    pub class: InstrClass,
    /// `vl` at execution time.
    pub vl: u32,
    /// Decoded `vtype` at execution time (`None` while `vill`).
    pub vtype: Option<VType>,
    /// Memory footprint, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Zero-based index of this instruction within the traced run.
    pub seq: u64,
}

impl RetireEvent<'_> {
    /// SEW the instruction executed under (`None` while `vill`).
    pub fn sew(&self) -> Option<rvv_isa::Sew> {
        self.vtype.map(|t| t.sew)
    }

    /// LMUL the instruction executed under (`None` while `vill`).
    ///
    /// Together with [`RetireEvent::vl`] this is what makes a cost model
    /// LMUL-aware: `vl` scales with LMUL, so element-proportional
    /// occupancy charges grow with the register-group size.
    pub fn lmul(&self) -> Option<rvv_isa::Lmul> {
        self.vtype.map(|t| t.lmul)
    }

    /// Elements the instruction operated on (its `vl`, at least 1 — an
    /// instruction retiring under `vl=0` still issues and occupies).
    pub fn elems(&self) -> u64 {
        u64::from(self.vl.max(1))
    }
}

/// Observer of a traced run. All methods except [`TraceSink::retire`] have
/// no-op defaults, so simple sinks implement one method.
///
/// The `Any` supertrait lets an owner that holds sinks as
/// `Box<dyn TraceSink>` recover the concrete type afterwards (upcast to
/// `Box<dyn Any>`, then downcast); it is why sinks must be `'static`.
pub trait TraceSink: std::any::Any {
    /// One instruction retired.
    fn retire(&mut self, event: &RetireEvent<'_>);

    /// A program is about to run (carries the name and symbol marks used
    /// for hotspot symbolication).
    fn launch(&mut self, _program: &Program) {}

    /// A host-runtime phase opened (phases nest).
    fn phase_begin(&mut self, _name: &str) {}

    /// The innermost open phase closed.
    fn phase_end(&mut self, _name: &str) {}
}

impl Machine {
    /// Pre-execution memory footprint of `instr`, if it is a load or store.
    ///
    /// Computed from architectural state *before* the instruction executes;
    /// see [`MemAccess`] for the strided/indexed approximation.
    pub fn mem_footprint(&self, instr: &Instr) -> Option<MemAccess> {
        use Instr::*;
        let vl = self.vl() as u64;
        match *instr {
            Load {
                width, rs1, offset, ..
            } => Some(MemAccess {
                addr: self.xreg(rs1).wrapping_add(offset as i64 as u64),
                bytes: width.bytes(),
                store: false,
            }),
            Store {
                width, rs1, offset, ..
            } => Some(MemAccess {
                addr: self.xreg(rs1).wrapping_add(offset as i64 as u64),
                bytes: width.bytes(),
                store: true,
            }),
            VLoad { eew, rs1, .. } | VLoadStrided { eew, rs1, .. } => Some(MemAccess {
                addr: self.xreg(rs1),
                bytes: vl * eew.bytes() as u64,
                store: false,
            }),
            VLoadIndexed { rs1, .. } => {
                // Data EEW is SEW for the modelled subset.
                let sew = self.vtype().map_or(0, |t| t.sew.bytes() as u64);
                Some(MemAccess {
                    addr: self.xreg(rs1),
                    bytes: vl * sew,
                    store: false,
                })
            }
            VStore { eew, rs1, .. } | VStoreStrided { eew, rs1, .. } => Some(MemAccess {
                addr: self.xreg(rs1),
                bytes: vl * eew.bytes() as u64,
                store: true,
            }),
            VStoreIndexed { rs1, .. } => {
                let sew = self.vtype().map_or(0, |t| t.sew.bytes() as u64);
                Some(MemAccess {
                    addr: self.xreg(rs1),
                    bytes: vl * sew,
                    store: true,
                })
            }
            VLoadWhole { nregs, rs1, .. } => Some(MemAccess {
                addr: self.xreg(rs1),
                bytes: nregs as u64 * self.vlenb() as u64,
                store: false,
            }),
            VStoreWhole { nregs, rs1, .. } => Some(MemAccess {
                addr: self.xreg(rs1),
                bytes: nregs as u64 * self.vlenb() as u64,
                store: true,
            }),
            VLoadMask { rs1, .. } => Some(MemAccess {
                addr: self.xreg(rs1),
                bytes: vl.div_ceil(8),
                store: false,
            }),
            VStoreMask { rs1, .. } => Some(MemAccess {
                addr: self.xreg(rs1),
                bytes: vl.div_ceil(8),
                store: true,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use rvv_isa::{MemWidth, Sew, VReg, XReg};

    #[test]
    fn footprints_of_the_memory_ops() {
        let mut m = Machine::new(MachineConfig {
            vlen: 128,
            mem_bytes: 1 << 16,
        });
        m.set_xreg(XReg::new(10), 0x100);
        // Scalar store with negative offset.
        let f = m
            .mem_footprint(&Instr::Store {
                width: MemWidth::D,
                rs2: XReg::ZERO,
                rs1: XReg::new(10),
                offset: -8,
            })
            .unwrap();
        assert_eq!((f.addr, f.bytes, f.store), (0xf8, 8, true));
        // Whole-register load: nregs × VLENB regardless of vl/vtype.
        let f = m
            .mem_footprint(&Instr::VLoadWhole {
                nregs: 4,
                vd: VReg::new(8),
                rs1: XReg::new(10),
            })
            .unwrap();
        assert_eq!((f.addr, f.bytes, f.store), (0x100, 64, false));
        // Unit-stride load scales with vl.
        m.set_vcfg(Some(rvv_isa::VType::new(Sew::E32, rvv_isa::Lmul::M1)), 3);
        let f = m
            .mem_footprint(&Instr::VLoad {
                eew: Sew::E32,
                vd: VReg::new(8),
                rs1: XReg::new(10),
                vm: true,
            })
            .unwrap();
        assert_eq!((f.addr, f.bytes, f.store), (0x100, 12, false));
        // Non-memory instructions have no footprint.
        assert!(m.mem_footprint(&Instr::Ecall).is_none());
    }
}
