//! The fused execution tier: superinstruction windows over a
//! [`CompiledPlan`].
//!
//! [`FusionTable::build`] runs a peephole pass over the plan's straight-line
//! instruction sequence and records *windows* — short runs of vector ops
//! that the paper's strip-mined kernels emit back-to-back — each compiled to
//! one SEW-monomorphized Rust kernel that performs the whole window as bulk
//! slice traffic (`copy_from_slice` / `copy_within` / `chunks_exact`
//! iterators) instead of per-element interpreter dispatch. Four shapes are
//! recognized:
//!
//! * **Map** — an optional unit-stride load, up to [`MAP_MAX_ALUS`] in-place
//!   scalar-operand ALU ops, and an optional unit-stride store, all on one
//!   register group (`vle; vop.vx/vi…; vse` — the paper's elementwise
//!   primitive, Listing 4).
//! * **MapVv** — two unit-stride loads, a combining `vop.vv`, and a store
//!   (`dst = a ⊕ b`).
//! * **ScanStep** — the scan ladder body: fill `ry` with a broadcast or
//!   copy, `vslideup` from `rx`, combine back into `rx` (§4.3, Listing 6).
//! * **WholeChain** — a run of whole-register loads/stores.
//!
//! ## The counter-exactness contract
//!
//! A fused kernel may run **only** when a set of pure `&self` preconditions
//! proves the per-op execution of every instruction in the window would be
//! trap-free; the checks are completed *before any byte of state changes*,
//! so a kernel that declines (returns `false`) has touched nothing and the
//! driver re-executes the window through the ordinary per-op loop — which
//! reproduces exact architectural behaviour including per-element trap
//! addresses and partial writes. On the fast path the driver retires each
//! constituent op's class individually, so [`crate::Counters`] totals,
//! per-class histograms, fuel metering, trace events, and `stop_pc` are
//! bit-identical to [`Machine::run_plan`]. The three-engine differential
//! suites (`tests/fuzz_exec.rs`, `rvv-algos/tests/differential.rs`) enforce
//! this on instruction soup and on every paper kernel.

use super::*;

/// Upper bound on in-place ALU ops folded into one Map window.
pub(crate) const MAP_MAX_ALUS: usize = 4;

/// A fused kernel: returns `true` if it executed the whole window, `false`
/// if a precondition failed and the caller must fall back to per-op
/// execution. A kernel that returns `false` has not mutated any state.
type FusedFn = fn(&mut Machine, &WindowKind) -> bool;

/// One fusable window: `len` consecutive instructions starting at the index
/// the [`FusionTable`] maps to it.
#[derive(Debug)]
pub(crate) struct Window {
    len: u32,
    kind: WindowKind,
    kernels: KCache<FusedFn>,
}

/// The recognized shape of a window (see module docs).
#[derive(Debug)]
enum WindowKind {
    Map(MapWin),
    MapVv(MapVvWin),
    ScanStep(ScanStepWin),
    WholeChain(Box<[WholeOp]>),
}

/// `vle v; vop.vx/vi v, v, s…; vse v` (each part optional, total ≥ 2 ops).
#[derive(Debug)]
struct MapWin {
    /// EEW of the load/store, when the window has one. Must equal the
    /// dynamic SEW for the fast path (the paper's kernels always load at
    /// SEW); otherwise the window falls back.
    eew: Option<Sew>,
    /// The register group every op reads and writes.
    v: VReg,
    /// Base-address register of the leading unit-stride load.
    load: Option<XReg>,
    /// Base-address register of the trailing unit-stride store.
    store: Option<XReg>,
    /// In-place ALU stages; the `VSrc` is always `X` or `I`.
    alus: Box<[(VAluOp, VSrc)]>,
}

/// `vle va, (pa); vle vb, (pb); vop.vv va, va, vb; vse va, (dst)`.
#[derive(Debug)]
struct MapVvWin {
    eew: Sew,
    va: VReg,
    vb: VReg,
    pa: XReg,
    pb: XReg,
    dst: XReg,
    op: VAluOp,
}

/// `vmv ry, <mv>; vslideup ry, rx, <off>; vop.vv rx, rx, ry`.
#[derive(Debug)]
struct ScanStepWin {
    ry: VReg,
    rx: VReg,
    mv: VSrc,
    off: SlideOff,
    op: VAluOp,
}

/// One whole-register move in a [`WindowKind::WholeChain`].
#[derive(Debug)]
struct WholeOp {
    load: bool,
    nregs: u8,
    vreg: VReg,
    rs1: XReg,
}

// --------------------------------------------------------------- detection --

/// The fusion index of one plan: windows plus a per-instruction map from
/// start index to window. Built once per plan (lazily, on the first fused
/// run) and shared read-only afterwards.
#[derive(Debug)]
pub(crate) struct FusionTable {
    windows: Vec<Window>,
    starts: Vec<Option<u32>>,
}

impl FusionTable {
    /// Scan the plan's instructions and claim non-overlapping windows
    /// greedily left-to-right, most specific shape first.
    pub(crate) fn build(plan: &CompiledPlan) -> FusionTable {
        let instrs = &plan.source.instrs;
        let mut windows = Vec::new();
        let mut starts = vec![None; instrs.len()];
        let mut i = 0;
        while i < instrs.len() {
            if let Some((kind, len)) = match_window(instrs, i) {
                starts[i] = Some(windows.len() as u32);
                windows.push(Window {
                    len,
                    kind,
                    kernels: KCache::new(),
                });
                i += len as usize;
            } else {
                i += 1;
            }
        }
        FusionTable { windows, starts }
    }

    /// Number of static windows.
    pub(crate) fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The window starting exactly at instruction index `idx`, if any.
    /// Entering a window anywhere else (a jump into its interior) simply
    /// runs per-op — every window op is straight-line, so the semantics
    /// are position-independent.
    #[inline(always)]
    fn at(&self, idx: usize) -> Option<&Window> {
        match self.starts.get(idx) {
            Some(Some(w)) => Some(&self.windows[*w as usize]),
            _ => None,
        }
    }
}

fn match_window(instrs: &[Instr], i: usize) -> Option<(WindowKind, u32)> {
    match_scan_step(instrs, i)
        .or_else(|| match_map_vv(instrs, i))
        .or_else(|| match_map(instrs, i))
        .or_else(|| match_whole_chain(instrs, i))
}

fn match_scan_step(instrs: &[Instr], i: usize) -> Option<(WindowKind, u32)> {
    // Immediate extension matches `lower` for VMvVI exactly.
    let (ry, mv) = match *instrs.get(i)? {
        Instr::VMvVV { vd, vs1 } => (vd, VSrc::V(vs1)),
        Instr::VMvVX { vd, rs1 } => (vd, VSrc::X(rs1)),
        Instr::VMvVI { vd, imm } => (vd, VSrc::I(imm as i64 as u64)),
        _ => return None,
    };
    let (rx, off) = match *instrs.get(i + 1)? {
        Instr::VSlideUpVX {
            vd,
            vs2,
            rs1,
            vm: true,
        } if vd == ry => (vs2, SlideOff::X(rs1)),
        Instr::VSlideUpVI {
            vd,
            vs2,
            uimm,
            vm: true,
        } if vd == ry => (vs2, SlideOff::I(uimm as u64)),
        _ => return None,
    };
    match *instrs.get(i + 2)? {
        Instr::VOpVV {
            op,
            vd,
            vs2,
            vs1,
            vm: true,
        } if vd == rx && vs2 == rx && vs1 == ry && rx != ry => Some((
            WindowKind::ScanStep(ScanStepWin {
                ry,
                rx,
                mv,
                off,
                op,
            }),
            3,
        )),
        _ => None,
    }
}

fn match_map_vv(instrs: &[Instr], i: usize) -> Option<(WindowKind, u32)> {
    let (eew, va, pa) = match *instrs.get(i)? {
        Instr::VLoad {
            eew,
            vd,
            rs1,
            vm: true,
        } => (eew, vd, rs1),
        _ => return None,
    };
    let (vb, pb) = match *instrs.get(i + 1)? {
        Instr::VLoad {
            eew: e,
            vd,
            rs1,
            vm: true,
        } if e == eew && vd != va => (vd, rs1),
        _ => return None,
    };
    let op = match *instrs.get(i + 2)? {
        Instr::VOpVV {
            op,
            vd,
            vs2,
            vs1,
            vm: true,
        } if vd == va && vs2 == va && vs1 == vb => op,
        _ => return None,
    };
    match *instrs.get(i + 3)? {
        Instr::VStore {
            eew: e,
            vs3,
            rs1,
            vm: true,
        } if e == eew && vs3 == va => Some((
            WindowKind::MapVv(MapVvWin {
                eew,
                va,
                vb,
                pa,
                pb,
                dst: rs1,
                op,
            }),
            4,
        )),
        _ => None,
    }
}

fn match_map(instrs: &[Instr], i: usize) -> Option<(WindowKind, u32)> {
    let mut at = i;
    let mut v: Option<VReg> = None;
    let mut eew: Option<Sew> = None;
    let mut load: Option<XReg> = None;
    if let Some(&Instr::VLoad {
        eew: e,
        vd,
        rs1,
        vm: true,
    }) = instrs.get(at)
    {
        v = Some(vd);
        eew = Some(e);
        load = Some(rs1);
        at += 1;
    }
    let mut alus: Vec<(VAluOp, VSrc)> = Vec::new();
    while alus.len() < MAP_MAX_ALUS {
        // Immediate extension matches `lower` for VOpVI exactly.
        let (op, vd, vs2, src) = match instrs.get(at) {
            Some(&Instr::VOpVX {
                op,
                vd,
                vs2,
                rs1,
                vm: true,
            }) => (op, vd, vs2, VSrc::X(rs1)),
            Some(&Instr::VOpVI {
                op,
                vd,
                vs2,
                imm,
                vm: true,
            }) => (
                op,
                vd,
                vs2,
                VSrc::I(if op.imm_is_unsigned() {
                    imm as u8 as u64
                } else {
                    imm as i64 as u64
                }),
            ),
            _ => break,
        };
        if vd != vs2 || v.is_some_and(|r| r != vd) {
            break;
        }
        v = Some(vd);
        alus.push((op, src));
        at += 1;
    }
    let v = v?;
    let mut store: Option<XReg> = None;
    if let Some(&Instr::VStore {
        eew: e,
        vs3,
        rs1,
        vm: true,
    }) = instrs.get(at)
    {
        if vs3 == v && (eew.is_none() || eew == Some(e)) {
            store = Some(rs1);
            eew.get_or_insert(e);
            at += 1;
        }
    }
    let len = at - i;
    if len < 2 {
        return None;
    }
    Some((
        WindowKind::Map(MapWin {
            eew,
            v,
            load,
            store,
            alus: alus.into_boxed_slice(),
        }),
        len as u32,
    ))
}

fn match_whole_chain(instrs: &[Instr], i: usize) -> Option<(WindowKind, u32)> {
    let mut ops = Vec::new();
    let mut at = i;
    loop {
        // Misaligned register groups trap per-op; exclude them statically so
        // a formed chain never has to re-check alignment at run time.
        let op = match instrs.get(at) {
            Some(&Instr::VLoadWhole { nregs, vd, rs1 })
                if (vd.num() as u32).is_multiple_of(nregs as u32) =>
            {
                WholeOp {
                    load: true,
                    nregs,
                    vreg: vd,
                    rs1,
                }
            }
            Some(&Instr::VStoreWhole { nregs, vs3, rs1 })
                if (vs3.num() as u32).is_multiple_of(nregs as u32) =>
            {
                WholeOp {
                    load: false,
                    nregs,
                    vreg: vs3,
                    rs1,
                }
            }
            _ => break,
        };
        ops.push(op);
        at += 1;
    }
    if ops.len() < 2 {
        return None;
    }
    let len = (at - i) as u32;
    Some((WindowKind::WholeChain(ops.into_boxed_slice()), len))
}

// ----------------------------------------------------------------- kernels --

impl Window {
    /// Attempt the fused fast path. `key` is the driver's current
    /// [`vtype_key`]; `vill` (key 0) declines, so the per-op fallback
    /// raises the architectural trap.
    #[inline(always)]
    fn try_execute(&self, m: &mut Machine, key: u8) -> bool {
        if let WindowKind::WholeChain(ops) = &self.kind {
            // Whole-register moves are vtype-independent: no SEW kernel.
            return exec_whole_chain(m, ops);
        }
        match self
            .kernels
            .lookup(key, |sew| resolve_window(&self.kind, sew))
        {
            Ok(f) => f(m, &self.kind),
            Err(_) => false,
        }
    }
}

fn resolve_window(kind: &WindowKind, sew: Sew) -> FusedFn {
    match kind {
        WindowKind::Map(w) => match w.alus.len() {
            0 => by_sew!(sew, exec_map0),
            1 => resolve_map1(w.alus[0].0, sew),
            _ => by_sew!(sew, exec_mapn),
        },
        WindowKind::MapVv(w) => resolve_mapvv(w.op, sew),
        WindowKind::ScanStep(w) => resolve_scanstep(w.op, sew),
        WindowKind::WholeChain(_) => exec_never,
    }
}

/// Unreachable kernel slot ([`WindowKind::WholeChain`] never resolves).
fn exec_never(_: &mut Machine, _: &WindowKind) -> bool {
    false
}

macro_rules! resolve_alu_kernel {
    ($name:ident, $f:ident) => {
        fn $name(op: VAluOp, sew: Sew) -> FusedFn {
            macro_rules! k {
                ($o:ty) => {
                    match sew {
                        Sew::E8 => $f::<u8, $o>,
                        Sew::E16 => $f::<u16, $o>,
                        Sew::E32 => $f::<u32, $o>,
                        Sew::E64 => $f::<u64, $o>,
                    }
                };
            }
            match op {
                VAluOp::Add => k!(BAdd),
                VAluOp::Sub => k!(BSub),
                VAluOp::Rsub => k!(BRsub),
                VAluOp::Minu => k!(BMinu),
                VAluOp::Min => k!(BMin),
                VAluOp::Maxu => k!(BMaxu),
                VAluOp::Max => k!(BMax),
                VAluOp::And => k!(BAnd),
                VAluOp::Or => k!(BOr),
                VAluOp::Xor => k!(BXor),
                VAluOp::Sll => k!(BSll),
                VAluOp::Srl => k!(BSrl),
                VAluOp::Sra => k!(BSra),
                VAluOp::Mul => k!(BMul),
                VAluOp::Mulh => k!(BMulh),
                VAluOp::Mulhu => k!(BMulhu),
                VAluOp::Divu => k!(BDivu),
                VAluOp::Div => k!(BDiv),
                VAluOp::Remu => k!(BRemu),
                VAluOp::Rem => k!(BRem),
            }
        }
    };
}

resolve_alu_kernel!(resolve_map1, exec_map1);
resolve_alu_kernel!(resolve_mapvv, exec_mapvv);
resolve_alu_kernel!(resolve_scanstep, exec_scanstep);

/// One ALU stage applied at scalar width: truncated like a register
/// write/read round-trip so chained stages match per-op execution exactly.
fn sapply<E: Elem, O: BinOp>(a: u64, b: u64) -> u64 {
    O::apply::<E>(a, b) & E::MAX
}

fn scalar_fn<E: Elem>(op: VAluOp) -> fn(u64, u64) -> u64 {
    match op {
        VAluOp::Add => sapply::<E, BAdd>,
        VAluOp::Sub => sapply::<E, BSub>,
        VAluOp::Rsub => sapply::<E, BRsub>,
        VAluOp::Minu => sapply::<E, BMinu>,
        VAluOp::Min => sapply::<E, BMin>,
        VAluOp::Maxu => sapply::<E, BMaxu>,
        VAluOp::Max => sapply::<E, BMax>,
        VAluOp::And => sapply::<E, BAnd>,
        VAluOp::Or => sapply::<E, BOr>,
        VAluOp::Xor => sapply::<E, BXor>,
        VAluOp::Sll => sapply::<E, BSll>,
        VAluOp::Srl => sapply::<E, BSrl>,
        VAluOp::Sra => sapply::<E, BSra>,
        VAluOp::Mul => sapply::<E, BMul>,
        VAluOp::Mulh => sapply::<E, BMulh>,
        VAluOp::Mulhu => sapply::<E, BMulhu>,
        VAluOp::Divu => sapply::<E, BDivu>,
        VAluOp::Div => sapply::<E, BDiv>,
        VAluOp::Remu => sapply::<E, BRemu>,
        VAluOp::Rem => sapply::<E, BRem>,
    }
}

/// The pre-truncated scalar operand of an in-place ALU stage (`None` only
/// for the detection-excluded `V` source).
#[inline(always)]
fn scalar_operand<E: Elem>(m: &Machine, src: VSrc) -> Option<u64> {
    match src {
        VSrc::X(r) => Some(m.xreg(r) & E::MAX),
        VSrc::I(v) => Some(v & E::MAX),
        VSrc::V(_) => None,
    }
}

/// Disjoint element regions of the register file: mutable at `offa`,
/// shared at `offb` (the caller has proven the ranges don't overlap).
#[inline(always)]
fn disjoint_regions(
    vregs: &mut [u8],
    offa: usize,
    offb: usize,
    bytes: usize,
) -> (&mut [u8], &[u8]) {
    if offa < offb {
        let (lo, hi) = vregs.split_at_mut(offb);
        (&mut lo[offa..offa + bytes], &hi[..bytes])
    } else {
        let (lo, hi) = vregs.split_at_mut(offa);
        (&mut hi[..bytes], &lo[offb..offb + bytes])
    }
}

/// Shared body of the Map kernels: prove every per-op check would pass,
/// bulk-load, run `pass` over the element region, bulk-store. Returns
/// `false` — having mutated nothing — on any failed precondition.
#[inline(always)]
fn map_region<E: Elem>(m: &mut Machine, w: &MapWin, pass: impl FnOnce(&mut [u8])) -> bool {
    if let Some(eew) = w.eew {
        if eew != E::SEW {
            return false;
        }
    }
    let Ok((_, vl)) = m.vcfg() else {
        return false;
    };
    if w.load.is_some() || w.store.is_some() {
        let Ok(regs) = m.emul_regs(E::SEW) else {
            return false;
        };
        if m.check_emul_group(w.v, regs).is_err() {
            return false;
        }
    }
    if !w.alus.is_empty() && m.check_data_op(w.v, &[w.v], true).is_err() {
        return false;
    }
    let bytes = vl as usize * E::BYTES;
    let lbase = w.load.map(|r| m.xreg(r));
    let sbase = w.store.map(|r| m.xreg(r));
    if bytes > 0 {
        // One range check per direction covers every per-element access
        // (`vl > 0` accesses are contiguous in `[base, base + bytes)`, and
        // `Memory::check` is direction-symmetric).
        for base in [lbase, sbase].into_iter().flatten() {
            if m.mem.read_bytes(base, bytes as u64).is_err() {
                return false;
            }
        }
    }
    let vlenb = m.vlenb() as usize;
    let off = w.v.num() as usize * vlenb;
    let (mem, vregs) = m.mem_and_vregs();
    let region = &mut vregs[off..off + bytes];
    if bytes > 0 {
        if let Some(base) = lbase {
            let src = mem.read_bytes(base, bytes as u64).expect("prechecked");
            region.copy_from_slice(src);
        }
    }
    pass(region);
    if bytes > 0 {
        if let Some(base) = sbase {
            mem.write_bytes(base, region).expect("prechecked");
        }
    }
    true
}

/// Map window with no ALU stages: a pure load/store copy through the
/// register group.
fn exec_map0<E: Elem>(m: &mut Machine, kind: &WindowKind) -> bool {
    let WindowKind::Map(w) = kind else {
        return false;
    };
    map_region::<E>(m, w, |_region| {})
}

/// Map window with exactly one ALU stage, monomorphized over the operation
/// so the element loop compiles to a straight (auto-vectorizable) pass.
fn exec_map1<E: Elem, O: BinOp>(m: &mut Machine, kind: &WindowKind) -> bool {
    let WindowKind::Map(w) = kind else {
        return false;
    };
    let Some(b) = scalar_operand::<E>(m, w.alus[0].1) else {
        return false;
    };
    map_region::<E>(m, w, |region| {
        for c in region.chunks_exact_mut(E::BYTES) {
            E::st(c, O::apply::<E>(E::ld(c), b));
        }
    })
}

/// Map window with 2..=[`MAP_MAX_ALUS`] stages, chained through resolved
/// scalar function pointers with per-stage SEW truncation.
fn exec_mapn<E: Elem>(m: &mut Machine, kind: &WindowKind) -> bool {
    let WindowKind::Map(w) = kind else {
        return false;
    };
    let mut stages = [(sapply::<E, BAdd> as fn(u64, u64) -> u64, 0u64); MAP_MAX_ALUS];
    let n = w.alus.len().min(MAP_MAX_ALUS);
    for (stage, &(op, src)) in stages.iter_mut().zip(w.alus.iter()) {
        let Some(b) = scalar_operand::<E>(m, src) else {
            return false;
        };
        *stage = (scalar_fn::<E>(op), b);
    }
    map_region::<E>(m, w, |region| {
        for c in region.chunks_exact_mut(E::BYTES) {
            let mut a = E::ld(c);
            for (f, b) in &stages[..n] {
                a = f(a, *b);
            }
            E::st(c, a);
        }
    })
}

/// `dst = a ⊕ b` over two loaded groups.
fn exec_mapvv<E: Elem, O: BinOp>(m: &mut Machine, kind: &WindowKind) -> bool {
    let WindowKind::MapVv(w) = kind else {
        return false;
    };
    if w.eew != E::SEW {
        return false;
    }
    let Ok((t, vl)) = m.vcfg() else {
        return false;
    };
    let Ok(regs) = m.emul_regs(E::SEW) else {
        return false;
    };
    if m.check_emul_group(w.va, regs).is_err() || m.check_emul_group(w.vb, regs).is_err() {
        return false;
    }
    if m.check_data_op(w.va, &[w.va, w.vb], true).is_err() {
        return false;
    }
    // Overlapping operand groups are architecturally legal for `vop.vv`,
    // but the bulk zip needs disjoint regions — rare, so just fall back.
    if Machine::groups_overlap(w.va, t.lmul.regs(), w.vb, t.lmul.regs()) {
        return false;
    }
    let bytes = vl as usize * E::BYTES;
    let (pa, pb, dst) = (m.xreg(w.pa), m.xreg(w.pb), m.xreg(w.dst));
    if bytes == 0 {
        return true;
    }
    for base in [pa, pb, dst] {
        if m.mem.read_bytes(base, bytes as u64).is_err() {
            return false;
        }
    }
    let vlenb = m.vlenb() as usize;
    let (offa, offb) = (w.va.num() as usize * vlenb, w.vb.num() as usize * vlenb);
    let (mem, vregs) = m.mem_and_vregs();
    vregs[offa..offa + bytes]
        .copy_from_slice(mem.read_bytes(pa, bytes as u64).expect("prechecked"));
    vregs[offb..offb + bytes]
        .copy_from_slice(mem.read_bytes(pb, bytes as u64).expect("prechecked"));
    let (ra, rb) = disjoint_regions(vregs, offa, offb, bytes);
    for (ca, cb) in ra.chunks_exact_mut(E::BYTES).zip(rb.chunks_exact(E::BYTES)) {
        E::st(ca, O::apply::<E>(E::ld(ca), E::ld(cb)));
    }
    mem.write_bytes(dst, &vregs[offa..offa + bytes])
        .expect("prechecked");
    true
}

/// The scan ladder body, in two bulk passes.
///
/// A single ascending pass would read `rx[i - start]` after modifying it;
/// instead pass 1 materializes all of `ry` (fill value below the slide
/// offset, a `copy_within` of the still-unmodified `rx` above it — the
/// slide's vd/vs2 overlap prohibition guarantees the groups are disjoint),
/// and pass 2 combines `rx[i] ⊕= ry[i]`.
fn exec_scanstep<E: Elem, O: BinOp>(m: &mut Machine, kind: &WindowKind) -> bool {
    let WindowKind::ScanStep(w) = kind else {
        return false;
    };
    let Ok((t, vl)) = m.vcfg() else {
        return false;
    };
    let regs = t.lmul.regs();
    let vlenb = m.vlenb() as usize;
    // Move-op checks, plus bulk disjointness for a register-source fill.
    let (mval, offs) = match w.mv {
        VSrc::V(src) => {
            if m.check_data_op(w.ry, &[src], true).is_err() {
                return false;
            }
            // Per-op copies elementwise ascending; with an overlapping
            // source that differs from memmove semantics, so fall back.
            if Machine::groups_overlap(w.ry, regs, src, regs) {
                return false;
            }
            (None, Some(src.num() as usize * vlenb))
        }
        VSrc::X(r) => {
            if m.check_data_op(w.ry, &[], true).is_err() {
                return false;
            }
            (Some(m.xreg(r) & E::MAX), None)
        }
        VSrc::I(v) => {
            if m.check_data_op(w.ry, &[], true).is_err() {
                return false;
            }
            (Some(v & E::MAX), None)
        }
    };
    // Slide checks: an overlapping vd/vs2 traps per-op — fall back so the
    // ordinary kernel raises the exact OverlapConstraint error.
    if m.check_data_op(w.ry, &[w.rx], true).is_err() {
        return false;
    }
    if Machine::groups_overlap(w.ry, regs, w.rx, regs) {
        return false;
    }
    // Combine checks.
    if m.check_data_op(w.rx, &[w.rx, w.ry], true).is_err() {
        return false;
    }
    let bytes = vl as usize * E::BYTES;
    let sb = (w.off.value(m).min(vl as u64) as usize) * E::BYTES;
    let (offy, offx) = (w.ry.num() as usize * vlenb, w.rx.num() as usize * vlenb);
    let vregs = m.vreg_store_mut();
    // Pass 1: ry = [fill(start) | rx[0 .. vl-start)].
    match (mval, offs) {
        (Some(v), _) => {
            for c in vregs[offy..offy + sb].chunks_exact_mut(E::BYTES) {
                E::st(c, v);
            }
        }
        (None, Some(offs)) => vregs.copy_within(offs..offs + sb, offy),
        (None, None) => return false,
    }
    vregs.copy_within(offx..offx + (bytes - sb), offy + sb);
    // Pass 2: rx[i] ⊕= ry[i].
    let (rx, ry) = disjoint_regions(vregs, offx, offy, bytes);
    for (cx, cy) in rx.chunks_exact_mut(E::BYTES).zip(ry.chunks_exact(E::BYTES)) {
        E::st(cx, O::apply::<E>(E::ld(cx), E::ld(cy)));
    }
    true
}

/// A chain of whole-register moves: alignment was proven statically at
/// detection, so the only runtime precondition is that every memory range
/// is accessible. The moves then reuse the plan tier's bulk kernels.
fn exec_whole_chain(m: &mut Machine, ops: &[WholeOp]) -> bool {
    let vlenb = m.vlenb() as u64;
    for op in ops {
        let base = m.xreg(op.rs1);
        if m.mem.read_bytes(base, op.nregs as u64 * vlenb).is_err() {
            return false;
        }
    }
    for op in ops {
        if op.load {
            m.vload_whole_fast(op.nregs, op.vreg, op.rs1)
                .expect("prechecked");
        } else {
            m.vstore_whole_fast(op.nregs, op.vreg, op.rs1)
                .expect("prechecked");
        }
    }
    true
}

// ----------------------------------------------------------------- drivers --

impl Machine {
    /// Run a compiled plan on the **fused tier**: identical to
    /// [`Machine::run_plan`] architecturally (state, counters, traps, fuel
    /// metering — the differential suites enforce it), but executes
    /// recognized instruction windows as single bulk kernels. Fusion
    /// activity is tallied in [`Machine::fused_stats`].
    pub fn run_fused(&mut self, plan: &CompiledPlan, fuel: u64) -> SimResult<RunReport> {
        self.run_fused_from(plan, fuel, 0)
    }

    /// [`Machine::run_fused`] with [`crate::DEFAULT_FUEL`].
    pub fn run_fused_default(&mut self, plan: &CompiledPlan) -> SimResult<RunReport> {
        self.run_fused(plan, crate::program::DEFAULT_FUEL)
    }

    /// [`Machine::run_fused`] starting at byte address `start_pc` — the
    /// resume half of checkpointing, mirroring [`Machine::run_plan_from`].
    /// A snapshot paused on any tier resumes identically on any other.
    pub fn run_fused_from(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        start_pc: u64,
    ) -> SimResult<RunReport> {
        let table = plan.fusion();
        let before = self.counters.total();
        let mut key = vtype_key(self);
        let mut at: usize = (start_pc / 4) as usize;
        let mut bad: Option<u64> = (!start_pc.is_multiple_of(4)).then_some(start_pc);
        loop {
            let spent = self.counters.total() - before;
            if spent >= fuel {
                self.stop_pc = bad.unwrap_or((at as u64) * 4);
                return Err(SimError::FuelExhausted { fuel });
            }
            if let Some(target) = bad {
                return Err(SimError::BadControlFlow { target });
            }
            // Window fast path: only with enough fuel for the whole window
            // (otherwise per-op execution exhausts fuel at the exact op the
            // plan tier would) and only when every precondition holds.
            if let Some(w) = table.at(at) {
                if fuel - spent >= u64::from(w.len) && w.try_execute(self, key) {
                    for op in &plan.ops[at..at + w.len as usize] {
                        self.counters.retire_class(op.class);
                    }
                    self.fused_stats.windows += 1;
                    self.fused_stats.ops += u64::from(w.len);
                    at += w.len as usize;
                    continue;
                }
            }
            let Some(op) = plan.ops.get(at) else {
                return Err(SimError::BadControlFlow {
                    target: (at as u64) * 4,
                });
            };
            let flow = op.kind.execute(self, plan, key)?;
            self.counters.retire_class(op.class);
            match flow {
                Flow::Seq => at += 1,
                Flow::To(i) => at = i,
                Flow::Cfg => {
                    key = vtype_key(self);
                    at += 1;
                }
                Flow::BadJump(t) => bad = Some(t),
                Flow::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: (at as u64) * 4,
                    })
                }
            }
        }
    }

    /// Like [`Machine::run_fused`], but reports every retired instruction
    /// to `sink` — including the constituents of fused windows, in order,
    /// with events byte-identical to [`Machine::run_plan_traced`]. Window
    /// ops never touch `xregs`, `vl`, or `vtype`, and `mem_footprint` is a
    /// pure function of those, so the per-op events can be assembled after
    /// the bulk kernel without observable difference.
    pub fn run_fused_traced(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        sink: &mut dyn TraceSink,
    ) -> SimResult<RunReport> {
        sink.launch(&plan.source);
        let table = plan.fusion();
        let before = self.counters.total();
        let mut key = vtype_key(self);
        let mut at: usize = 0;
        let mut bad: Option<u64> = None;
        loop {
            let seq = self.counters.total() - before;
            if seq >= fuel {
                self.stop_pc = bad.unwrap_or((at as u64) * 4);
                return Err(SimError::FuelExhausted { fuel });
            }
            if let Some(target) = bad {
                return Err(SimError::BadControlFlow { target });
            }
            if let Some(w) = table.at(at) {
                if fuel - seq >= u64::from(w.len) && w.try_execute(self, key) {
                    self.fused_stats.windows += 1;
                    self.fused_stats.ops += u64::from(w.len);
                    let end = at + w.len as usize;
                    let ops = plan.ops[at..end].iter();
                    for (k, (op, instr)) in ops.zip(&plan.source.instrs[at..end]).enumerate() {
                        self.counters.retire_class(op.class);
                        let event = RetireEvent {
                            pc: ((at + k) as u64) * 4,
                            instr,
                            class: op.class,
                            vl: self.vl(),
                            vtype: self.vtype(),
                            mem: self.mem_footprint(instr),
                            seq: seq + k as u64,
                        };
                        sink.retire(&event);
                    }
                    at = end;
                    continue;
                }
            }
            let Some(op) = plan.ops.get(at) else {
                return Err(SimError::BadControlFlow {
                    target: (at as u64) * 4,
                });
            };
            let instr = &plan.source.instrs[at];
            let event = RetireEvent {
                pc: (at as u64) * 4,
                instr,
                class: op.class,
                vl: self.vl(),
                vtype: self.vtype(),
                mem: self.mem_footprint(instr),
                seq,
            };
            let flow = op.kind.execute(self, plan, key)?;
            self.counters.retire_class(op.class);
            sink.retire(&event);
            match flow {
                Flow::Seq => at += 1,
                Flow::To(i) => at = i,
                Flow::Cfg => {
                    key = vtype_key(self);
                    at += 1;
                }
                Flow::BadJump(t) => bad = Some(t),
                Flow::Halt => {
                    return Ok(RunReport {
                        retired: self.counters.total() - before,
                        halt_pc: (at as u64) * 4,
                    })
                }
            }
        }
    }

    /// Fused-tier faulted run. A [`crate::FaultHook`] must observe *every*
    /// instruction boundary (hooks are stateful — ordinals, one-shot
    /// arming), and a fused window has no interior boundaries, so the
    /// faulted run uses the per-op plan loop directly: the hook is
    /// consulted at exactly the same pre-execution points, and by the
    /// dispatch-independence invariant the result is identical to what a
    /// boundary-respecting fused run would produce.
    pub fn run_fused_faulted(
        &mut self,
        plan: &CompiledPlan,
        fuel: u64,
        hook: &mut dyn crate::FaultHook,
    ) -> SimResult<RunReport> {
        self.run_plan_faulted(plan, fuel, hook)
    }
}
