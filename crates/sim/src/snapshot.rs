//! Machine snapshots: the complete architectural state of the hart as a
//! value, plus a versioned digest-stamped binary serialization.
//!
//! A snapshot captures everything [`crate::Machine::restore`] needs to
//! make a machine bit-for-bit indistinguishable from the one snapshotted:
//! the scalar and vector register files, the `vtype`/`vl` CSRs, the
//! retired-instruction counters, the pause PC recorded when a run loop
//! returned [`crate::SimError::FuelExhausted`], and the dirty memory
//! pages (see [`crate::MemSnapshot`]). It does **not** capture host-side
//! scratch (`cmp_scratch` — rebuilt on demand) or anything about compiled
//! plans (plans are pure functions of the program).

use crate::counters::Counters;
use crate::memory::MemSnapshot;
use rvv_ckpt::{open, seal, ByteReader, ByteWriter, CodecError};
use rvv_isa::{InstrClass, Lmul, Sew, VType};

/// Frame kind tag for serialized machine snapshots.
pub(crate) const FRAME_KIND: &str = "rvv-machine-snapshot";
/// Layout version; bump on any change to the byte layout below.
pub(crate) const FRAME_VERSION: u16 = 1;

/// A point-in-time copy of the full architectural state of a [`crate::Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSnapshot {
    /// VLEN in bits (restore requires an identical VLEN).
    pub vlen: u32,
    /// Scalar register file.
    pub xregs: [u64; 32],
    /// Vector register file, `32 × VLENB` bytes.
    pub vregs: Box<[u8]>,
    /// Decoded `vtype` CSR (`None` = `vill`).
    pub vtype: Option<VType>,
    /// `vl` CSR.
    pub vl: u32,
    /// Retired-instruction counters.
    pub counters: Counters,
    /// PC at which the last run loop paused with `FuelExhausted` — the
    /// address `run_plan_from`/`run_legacy_from` resumes at.
    pub stop_pc: u64,
    /// Dirty memory pages and guard regions.
    pub mem: MemSnapshot,
}

fn put_vtype(w: &mut ByteWriter, vtype: Option<VType>) {
    match vtype {
        None => w.put_bool(false),
        Some(t) => {
            w.put_bool(true);
            let sew = Sew::ALL.iter().position(|&s| s == t.sew).unwrap();
            let lmul = Lmul::ALL_WITH_FRACTIONAL
                .iter()
                .position(|&l| l == t.lmul)
                .unwrap();
            w.put_u8(sew as u8);
            w.put_u8(lmul as u8);
            w.put_bool(t.ta);
            w.put_bool(t.ma);
        }
    }
}

fn get_vtype(r: &mut ByteReader<'_>) -> Result<Option<VType>, CodecError> {
    if !r.get_bool()? {
        return Ok(None);
    }
    let sew_idx = r.get_u8()?;
    let sew = *Sew::ALL.get(sew_idx as usize).ok_or(CodecError::BadValue {
        what: "sew index",
        value: u64::from(sew_idx),
    })?;
    let lmul_idx = r.get_u8()?;
    let lmul = *Lmul::ALL_WITH_FRACTIONAL
        .get(lmul_idx as usize)
        .ok_or(CodecError::BadValue {
            what: "lmul index",
            value: u64::from(lmul_idx),
        })?;
    let ta = r.get_bool()?;
    let ma = r.get_bool()?;
    Ok(Some(VType { sew, lmul, ta, ma }))
}

pub(crate) fn put_counters(w: &mut ByteWriter, c: &Counters) {
    w.put_u32(InstrClass::ALL.len() as u32);
    for (_, n) in c.iter() {
        w.put_u64(n);
    }
}

pub(crate) fn get_counters(r: &mut ByteReader<'_>) -> Result<Counters, CodecError> {
    let n = r.get_u32()?;
    if n as usize != InstrClass::ALL.len() {
        return Err(CodecError::BadValue {
            what: "instruction-class count",
            value: u64::from(n),
        });
    }
    let mut counts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        counts.push(r.get_u64()?);
    }
    Ok(Counters::from_class_counts(&counts))
}

fn put_mem(w: &mut ByteWriter, m: &MemSnapshot) {
    w.put_u64(m.size);
    w.put_u32(m.guards.len() as u32);
    for g in &m.guards {
        w.put_u64(g.start);
        w.put_u64(g.end);
    }
    w.put_u32(m.pages.len() as u32);
    for (p, data) in &m.pages {
        w.put_u64(*p);
        w.put_bytes(data);
    }
}

fn get_mem(r: &mut ByteReader<'_>) -> Result<MemSnapshot, CodecError> {
    let size = r.get_u64()?;
    let nguards = r.get_u32()?;
    let mut guards = Vec::with_capacity(nguards as usize);
    for _ in 0..nguards {
        let start = r.get_u64()?;
        let end = r.get_u64()?;
        guards.push(start..end);
    }
    let npages = r.get_u32()?;
    let mut pages = Vec::with_capacity(npages as usize);
    for _ in 0..npages {
        let p = r.get_u64()?;
        let data = r.get_bytes()?.to_vec().into_boxed_slice();
        pages.push((p, data));
    }
    Ok(MemSnapshot {
        size,
        guards,
        pages,
    })
}

/// Encode the snapshot payload (no frame) — shared with the environment
/// snapshot, which embeds a machine snapshot inside its own frame.
pub(crate) fn encode_payload(s: &MachineSnapshot) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(s.vlen);
    for &x in &s.xregs {
        w.put_u64(x);
    }
    w.put_bytes(&s.vregs);
    put_vtype(&mut w, s.vtype);
    w.put_u32(s.vl);
    put_counters(&mut w, &s.counters);
    w.put_u64(s.stop_pc);
    put_mem(&mut w, &s.mem);
    w.into_bytes()
}

/// Decode a payload produced by [`encode_payload`].
pub(crate) fn decode_payload(r: &mut ByteReader<'_>) -> Result<MachineSnapshot, CodecError> {
    let vlen = r.get_u32()?;
    let mut xregs = [0u64; 32];
    for x in &mut xregs {
        *x = r.get_u64()?;
    }
    let vregs = r.get_bytes()?.to_vec().into_boxed_slice();
    let vtype = get_vtype(r)?;
    let vl = r.get_u32()?;
    let counters = get_counters(r)?;
    let stop_pc = r.get_u64()?;
    let mem = get_mem(r)?;
    Ok(MachineSnapshot {
        vlen,
        xregs,
        vregs,
        vtype,
        vl,
        counters,
        stop_pc,
        mem,
    })
}

impl MachineSnapshot {
    /// Serialize into a versioned, digest-stamped frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(FRAME_KIND, FRAME_VERSION, &encode_payload(self))
    }

    /// Deserialize a frame produced by [`MachineSnapshot::to_bytes`],
    /// rejecting wrong kinds, wrong versions, and corrupt payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<MachineSnapshot, CodecError> {
        let payload = open(FRAME_KIND, FRAME_VERSION, bytes)?;
        let mut r = ByteReader::new(payload);
        let snap = decode_payload(&mut r)?;
        r.finish()?;
        Ok(snap)
    }
}
