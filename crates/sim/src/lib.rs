//! # rvv-sim — a functional RISC-V + RVV simulator with dynamic instruction
//! counting
//!
//! This crate is the workspace's substitute for **Spike**
//! (`riscv-isa-sim`), the simulator the paper evaluates on. Like Spike it is
//! a *functional* model — no pipeline, no cache, no cycle accounting — and
//! like the paper it measures performance as **dynamic instruction count**:
//! every architecturally retired instruction counts one, whether scalar or
//! vector and regardless of LMUL.
//!
//! ## What it models
//!
//! * RV64IM scalar subset (ALU, branches, loads/stores, jumps, `M`).
//! * RVV 1.0 integer subset: `vsetvli` configuration with SEW ∈
//!   {8,16,32,64} and LMUL ∈ {1,2,4,8}; unit-stride/strided/indexed and
//!   whole-register memory ops; integer arithmetic with masking; compares to
//!   mask; the mask instruction group (`viota`, `vcpop`, `vfirst`, `vmsbf`,
//!   `vmsif`, `vmsof`, `vid`, mask logicals); slides, gather, compress;
//!   single-width reductions.
//! * Configurable VLEN (the paper sweeps 128/256/512/1024).
//! * Flat bounds-checked little-endian memory with optional guard regions
//!   for buffer-overrun detection in tests.
//!
//! ## What it deliberately does not model
//!
//! Floating point, fixed point, widening/narrowing ops, segment memory ops,
//! fractional LMUL, `vstart` ≠ 0, and precise trap resumption — none are
//! used by the scan vector model kernels. Tail/masked-off elements are left
//! *undisturbed*, which is legal for both the undisturbed and agnostic
//! policies the ISA allows.
//!
//! ## Example
//!
//! ```
//! use rvv_isa::{AluOp, Instr, XReg};
//! use rvv_sim::{Machine, MachineConfig, Program};
//!
//! let mut m = Machine::new(MachineConfig { vlen: 256, mem_bytes: 4096 });
//! let p = Program::new(
//!     "add",
//!     vec![
//!         Instr::OpImm { op: AluOp::Add, rd: XReg::new(5), rs1: XReg::ZERO, imm: 40 },
//!         Instr::OpImm { op: AluOp::Add, rd: XReg::new(5), rs1: XReg::new(5), imm: 2 },
//!         Instr::Ecall,
//!     ],
//! );
//! let report = m.run_default(&p).unwrap();
//! assert_eq!(m.xreg(XReg::new(5)), 42);
//! assert_eq!(report.retired, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod counters;
mod error;
mod exec;
mod fault;
mod machine;
mod memory;
mod plan;
mod program;
mod snapshot;
mod trace;

pub use cancel::CancelToken;
pub use counters::Counters;
pub use error::{SimError, SimResult};
pub use exec::Control;
pub use fault::{FaultAction, FaultHook};
pub use machine::{FusedStats, Machine, MachineConfig};
pub use memory::{MemSnapshot, Memory, PAGE_BYTES};
pub use plan::CompiledPlan;
pub use program::{Program, RunReport, DEFAULT_FUEL};
pub use snapshot::MachineSnapshot;
pub use trace::{MemAccess, RetireEvent, TraceSink};
