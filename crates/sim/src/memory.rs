//! Flat little-endian memory with bounds checking and optional guard
//! regions.
//!
//! The simulated machine sees one contiguous byte-addressable memory starting
//! at address 0. The scan-vector library's environment bump-allocates buffers
//! out of it; tests can arm *guard regions* around buffers so that an
//! under/overrun traps deterministically instead of silently corrupting a
//! neighbouring buffer.

use crate::error::{SimError, SimResult};
use std::ops::Range;

/// Dirty-page granularity for snapshots: 4 KiB, so a snapshot copies
/// O(pages written) bytes, not O(memory size).
pub const PAGE_BYTES: u64 = 4096;

/// A copy of every page written since the memory was created (or since
/// the last [`Memory::restore`]), plus the guard regions. Because fresh
/// memory is all-zero, the dirty pages fully determine the contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Memory size in bytes (restore requires an identical size).
    pub size: u64,
    /// Guard regions armed at snapshot time (disarmed slots included, so
    /// guard handles stay valid across restore).
    pub guards: Vec<Range<u64>>,
    /// `(page index, page bytes)` for every dirty page, ascending. The
    /// final page of a non-page-multiple memory may be short.
    pub pages: Vec<(u64, Box<[u8]>)>,
}

/// Byte-addressable little-endian memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    guards: Vec<Range<u64>>,
    /// One bit per [`PAGE_BYTES`] page, set on any write (simulated or
    /// host-side). Never cleared except by [`Memory::restore`], whose
    /// correctness depends on "not dirty ⇒ still zero".
    dirty: Vec<u64>,
}

impl Memory {
    /// Create a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Memory {
        let pages = (size as u64).div_ceil(PAGE_BYTES) as usize;
        Memory {
            bytes: vec![0; size],
            guards: Vec::new(),
            dirty: vec![0; pages.div_ceil(64)],
        }
    }

    /// Mark every page intersecting `[addr, addr+len)` dirty. Callers
    /// pass already-bounds-checked ranges.
    #[inline]
    fn mark_dirty(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_BYTES;
        let last = (addr + len - 1) / PAGE_BYTES;
        for p in first..=last {
            self.dirty[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    fn dirty_page_indices(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (w, &word) in self.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                out.push(w as u64 * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Number of pages written so far — snapshots copy exactly this many
    /// pages.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Capture the written pages and guard regions. Cost is
    /// O(dirty pages), independent of total memory size.
    pub fn snapshot(&self) -> MemSnapshot {
        let pages = self
            .dirty_page_indices()
            .into_iter()
            .map(|p| {
                let start = (p * PAGE_BYTES) as usize;
                let end = ((p + 1) * PAGE_BYTES).min(self.size()) as usize;
                (p, self.bytes[start..end].to_vec().into_boxed_slice())
            })
            .collect();
        MemSnapshot {
            size: self.size(),
            guards: self.guards.clone(),
            pages,
        }
    }

    /// Restore memory to exactly the snapshotted contents: pages dirty
    /// now but clean at snapshot time are re-zeroed, snapshotted pages
    /// are copied back, and the dirty set becomes the snapshot's.
    ///
    /// # Panics
    /// If the snapshot was taken from a memory of a different size.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        assert_eq!(
            snap.size,
            self.size(),
            "snapshot is from a {}-byte memory, this one is {} bytes",
            snap.size,
            self.size()
        );
        for p in self.dirty_page_indices() {
            let start = (p * PAGE_BYTES) as usize;
            let end = ((p + 1) * PAGE_BYTES).min(self.size()) as usize;
            self.bytes[start..end].fill(0);
        }
        self.dirty.fill(0);
        for (p, data) in &snap.pages {
            let start = (*p * PAGE_BYTES) as usize;
            self.bytes[start..start + data.len()].copy_from_slice(data);
            self.dirty[(*p / 64) as usize] |= 1u64 << (*p % 64);
        }
        self.guards = snap.guards.clone();
    }

    /// Memory size in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Arm a guard region: any load or store intersecting `range` traps with
    /// [`SimError::GuardHit`]. Returns a handle for [`Memory::remove_guard`].
    pub fn add_guard(&mut self, range: Range<u64>) -> usize {
        self.guards.push(range);
        self.guards.len() - 1
    }

    /// Disarm a guard region previously armed with [`Memory::add_guard`].
    /// Guards are disarmed by replacing with an empty range so handles stay
    /// stable.
    pub fn remove_guard(&mut self, handle: usize) {
        if let Some(g) = self.guards.get_mut(handle) {
            *g = 0..0;
        }
    }

    /// Remove every guard region.
    pub fn clear_guards(&mut self) {
        self.guards.clear();
    }

    /// Bounds check only — `addr + len` computed with `checked_add` so wild
    /// pointers near `u64::MAX` trap instead of wrapping around into
    /// low memory.
    #[inline]
    fn check_bounds(&self, addr: u64, len: u64) -> SimResult<u64> {
        let end = addr.checked_add(len).ok_or(SimError::MemOutOfBounds {
            addr,
            len,
            size: self.size(),
        })?;
        if end > self.size() {
            return Err(SimError::MemOutOfBounds {
                addr,
                len,
                size: self.size(),
            });
        }
        Ok(end)
    }

    #[inline]
    fn check(&self, addr: u64, len: u64) -> SimResult<()> {
        let end = self.check_bounds(addr, len)?;
        if !self.guards.is_empty() {
            for g in &self.guards {
                if addr < g.end && end > g.start {
                    return Err(SimError::GuardHit { addr });
                }
            }
        }
        Ok(())
    }

    /// Load `len ∈ {1,2,4,8}` bytes little-endian, zero-extended to `u64`.
    #[inline]
    pub fn load(&self, addr: u64, len: u64) -> SimResult<u64> {
        debug_assert!(len <= 8, "load of {len} bytes does not fit a u64");
        self.check(addr, len)?;
        let a = addr as usize;
        let mut v = 0u64;
        for (i, b) in self.bytes[a..a + len as usize].iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Store the low `len ∈ {1,2,4,8}` bytes of `value` little-endian.
    #[inline]
    pub fn store(&mut self, addr: u64, len: u64, value: u64) -> SimResult<()> {
        debug_assert!(len <= 8, "store of {len} bytes does not fit a u64");
        self.check(addr, len)?;
        self.mark_dirty(addr, len);
        let a = addr as usize;
        for i in 0..len as usize {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Read a byte slice (bounds- and guard-checked).
    pub fn read_bytes(&self, addr: u64, len: u64) -> SimResult<&[u8]> {
        self.check(addr, len)?;
        Ok(&self.bytes[addr as usize..(addr + len) as usize])
    }

    /// Write a byte slice (bounds- and guard-checked).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> SimResult<()> {
        self.check(addr, data.len() as u64)?;
        self.mark_dirty(addr, data.len() as u64);
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Host-side load: bounds-checked but **guard-exempt**. Guard regions
    /// model device-side buffer overruns; the host runtime staging inputs
    /// and reading back results is not simulated execution and must be able
    /// to inspect memory even while guards are armed (a chaos run that arms
    /// a guard over a result buffer must not turn read-back into a trap).
    #[inline]
    pub fn peek(&self, addr: u64, len: u64) -> SimResult<u64> {
        debug_assert!(len <= 8, "peek of {len} bytes does not fit a u64");
        self.check_bounds(addr, len)?;
        let a = addr as usize;
        let mut v = 0u64;
        for (i, b) in self.bytes[a..a + len as usize].iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Host-side store: bounds-checked but guard-exempt (see
    /// [`Memory::peek`]).
    #[inline]
    pub fn poke(&mut self, addr: u64, len: u64, value: u64) -> SimResult<()> {
        debug_assert!(len <= 8, "poke of {len} bytes does not fit a u64");
        self.check_bounds(addr, len)?;
        self.mark_dirty(addr, len);
        let a = addr as usize;
        for i in 0..len as usize {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Host-side fill: bounds-checked, guard-exempt. The environment's
    /// allocator zeroes fresh allocations through this so arming a guard
    /// inside the heap cannot make allocation itself trap.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) -> SimResult<()> {
        self.check_bounds(addr, len)?;
        self.mark_dirty(addr, len);
        self.bytes[addr as usize..(addr + len) as usize].fill(byte);
        Ok(())
    }

    /// Host-side convenience: copy a `u32` slice into memory (no guard check
    /// — this is test/driver setup, not simulated execution).
    pub fn write_u32_slice(&mut self, addr: u64, data: &[u32]) {
        self.mark_dirty(addr, 4 * data.len() as u64);
        let a = addr as usize;
        for (i, v) in data.iter().enumerate() {
            self.bytes[a + 4 * i..a + 4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Host-side convenience: copy memory out as a `u32` vector.
    pub fn read_u32_slice(&self, addr: u64, n: usize) -> Vec<u32> {
        let a = addr as usize;
        (0..n)
            .map(|i| u32::from_le_bytes(self.bytes[a + 4 * i..a + 4 * i + 4].try_into().unwrap()))
            .collect()
    }

    /// Host-side convenience: copy a `u64` slice into memory.
    pub fn write_u64_slice(&mut self, addr: u64, data: &[u64]) {
        self.mark_dirty(addr, 8 * data.len() as u64);
        let a = addr as usize;
        for (i, v) in data.iter().enumerate() {
            self.bytes[a + 8 * i..a + 8 * i + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Host-side convenience: copy memory out as a `u64` vector.
    pub fn read_u64_slice(&self, addr: u64, n: usize) -> Vec<u64> {
        let a = addr as usize;
        (0..n)
            .map(|i| u64::from_le_bytes(self.bytes[a + 8 * i..a + 8 * i + 8].try_into().unwrap()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut m = Memory::new(64);
        m.store(8, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(8, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load(8, 4).unwrap(), 0x5566_7788);
        assert_eq!(m.load(8, 1).unwrap(), 0x88);
        // Little-endian byte order.
        assert_eq!(m.load(15, 1).unwrap(), 0x11);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = Memory::new(16);
        assert!(matches!(
            m.load(16, 1),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(matches!(
            m.load(12, 8),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(matches!(
            m.store(u64::MAX, 8, 0),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(m.store(8, 8, 1).is_ok());
    }

    #[test]
    fn guards_trap_and_disarm() {
        let mut m = Memory::new(64);
        let g = m.add_guard(16..20);
        assert!(matches!(m.load(16, 4), Err(SimError::GuardHit { .. })));
        assert!(matches!(m.load(12, 8), Err(SimError::GuardHit { .. }))); // straddles
        assert!(m.load(12, 4).is_ok()); // adjacent below
        assert!(m.load(20, 4).is_ok()); // adjacent above
        m.remove_guard(g);
        assert!(m.load(16, 4).is_ok());
    }

    #[test]
    fn overflow_near_u64_max_traps_and_reports() {
        let m = Memory::new(16);
        for addr in [u64::MAX, u64::MAX - 7, u64::MAX - 4] {
            let e = m.load(addr, 8).unwrap_err();
            assert!(matches!(e, SimError::MemOutOfBounds { .. }), "{e:?}");
            // The report must render without overflowing (debug builds
            // panic on arithmetic overflow).
            let _ = e.to_string();
        }
        assert!(matches!(
            m.peek(u64::MAX - 1, 4),
            Err(SimError::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn host_side_access_is_guard_exempt() {
        let mut m = Memory::new(64);
        m.add_guard(16..24);
        // Simulated access traps...
        assert!(matches!(m.load(16, 4), Err(SimError::GuardHit { .. })));
        assert!(matches!(m.store(16, 4, 1), Err(SimError::GuardHit { .. })));
        // ...host-side staging does not, but stays bounds-checked.
        m.poke(16, 8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.peek(16, 8).unwrap(), 0x0102_0304_0506_0708);
        m.fill(16, 8, 0).unwrap();
        assert_eq!(m.peek(16, 8).unwrap(), 0);
        assert!(matches!(
            m.fill(60, 8, 0),
            Err(SimError::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new(64);
        m.write_u32_slice(4, &[1, 2, 3]);
        assert_eq!(m.read_u32_slice(4, 3), vec![1, 2, 3]);
        m.write_u64_slice(32, &[u64::MAX, 7]);
        assert_eq!(m.read_u64_slice(32, 2), vec![u64::MAX, 7]);
    }
}
