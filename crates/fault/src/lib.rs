//! # rvv-fault — deterministic fault injection for the scan-vector stack
//!
//! The paper's headline anomaly (LMUL=8 spills making kernels *slower*) was
//! found because Spike surfaces pathological configurations faithfully; this
//! crate makes our reproduction equally trustworthy at the edges. It
//! provides:
//!
//! * [`FaultPlan`] — a seeded, serializable description of *which* faults to
//!   inject *where*, derived from `(seed, job_index)` with a self-contained
//!   xorshift64* PRNG (no `rand` dependency anywhere near the injection
//!   path).
//! * [`ArmedFaults`] — a [`rvv_sim::FaultHook`] that fires a plan's faults
//!   at exact instruction/access ordinals, identically on the plan engine
//!   and the legacy interpreter.
//! * [`chaos`] — a differential harness that runs the eight scan-vector
//!   algorithms under injected faults on **both** engines and checks the
//!   no-panic / no-divergence / clean-recovery contract.
//!
//! ## Determinism contract
//!
//! A fault plan is a pure function of `(seed, job_index)`. The armed hook
//! decides from its own ordinal counters — never wall clock, never host
//! state — and the run loops consult it at identical points (see
//! `rvv_sim::FaultHook`). Consequently a faulted run is exactly as
//! reproducible as an unfaulted one: same trap, same instruction, same
//! counters, on every engine, at every thread count, on every rerun.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use rvv_isa::{decode, encode, Instr};
use rvv_sim::{FaultAction, FaultHook, MemAccess, SimError};
use std::fmt;
use std::str::FromStr;

// ---------------------------------------------------------------- PRNG --

/// Xorshift64* — tiny, seedable, and good enough for picking fault points.
/// Lives here so the injection path has **no** dependency on the `rand`
/// crate (vendored or otherwise): fault plans must be derivable in any
/// build of this workspace, bit-identically.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

/// SplitMix64 finalizer: avalanches a seed so that nearby inputs (seed 1,
/// seed 2, …) produce uncorrelated streams.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl XorShift64 {
    /// Seed a generator (any seed works; zero is remapped internally).
    pub fn new(seed: u64) -> XorShift64 {
        let state = mix64(seed);
        XorShift64 {
            state: if state == 0 { 0x9e37_79b9 } else { state },
        }
    }

    /// Seed from a `(seed, job_index)` pair — the keying every
    /// [`FaultPlan`] uses.
    pub fn from_pair(seed: u64, job_index: u64) -> XorShift64 {
        XorShift64::new(seed ^ mix64(job_index))
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `[0, n)`. Modulo bias is irrelevant at the
    /// ranges fault plans draw from.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// -------------------------------------------------------------- faults --

/// One armed fault. Ordinals (`nth`, `after`) are 1-based and count the
/// same quantity on both engines (see each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Trap the `nth` memory-*read* instruction with
    /// [`SimError::InjectedFault`] (`what = "read"`).
    ReadFault {
        /// 1-based ordinal among read instructions.
        nth: u64,
    },
    /// Trap the `nth` memory-*write* instruction with
    /// [`SimError::InjectedFault`] (`what = "write"`).
    WriteFault {
        /// 1-based ordinal among write instructions.
        nth: u64,
    },
    /// Trap with [`SimError::InjectedFault`] (`what = "fuel"`) once `after`
    /// instructions have been consulted — starvation at a precise,
    /// engine-independent point (the run loop's own fuel counts per
    /// *launch*; this counts across the whole hook lifetime, i.e. per
    /// job). Deliberately *not* [`SimError::FuelExhausted`]: that variant
    /// is reserved for the run loop itself, which is what lets the
    /// environment's watchdog rewrite distinguish a crossed budget line
    /// from an injected starvation fault.
    FuelCut {
        /// Instructions allowed before the cut.
        after: u64,
    },
    /// Flip bit `bit` of the `nth` instruction's 32-bit encoding. If the
    /// corrupted word still decodes, the decoded instruction executes in
    /// place of the original; if not, the fetch traps with
    /// [`SimError::IllegalInstruction`] carrying the corrupted word.
    BitFlip {
        /// 1-based instruction ordinal.
        nth: u64,
        /// Bit position, `0..32`.
        bit: u8,
    },
    /// Force the `nth` fetch to see a reserved (undecodable) opcode:
    /// traps with [`SimError::IllegalInstruction`] carrying `encoding`.
    Reserved {
        /// 1-based instruction ordinal.
        nth: u64,
        /// The reserved word (verified undecodable at derive time).
        encoding: u32,
    },
    /// Arm a guard region at `offset` bytes into the device heap, `len`
    /// bytes long. Not a hook-level fault — the harness arms it on the
    /// environment's memory before launching ([`Fault::guard_range`]);
    /// kernels that stray into it trap with [`SimError::GuardHit`].
    GuardRegion {
        /// Byte offset from the heap base.
        offset: u64,
        /// Guard length in bytes.
        len: u64,
    },
}

impl Fault {
    /// The absolute address range a [`Fault::GuardRegion`] arms, given the
    /// heap base address; `None` for every other variant.
    pub fn guard_range(&self, heap_base: u64) -> Option<std::ops::Range<u64>> {
        match self {
            Fault::GuardRegion { offset, len } => {
                let start = heap_base.saturating_add(*offset);
                Some(start..start.saturating_add(*len))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::ReadFault { nth } => write!(f, "read@{nth}"),
            Fault::WriteFault { nth } => write!(f, "write@{nth}"),
            Fault::FuelCut { after } => write!(f, "fuel@{after}"),
            Fault::BitFlip { nth, bit } => write!(f, "bitflip@{nth}.{bit}"),
            Fault::Reserved { nth, encoding } => write!(f, "reserved@{nth}:{encoding:#010x}"),
            Fault::GuardRegion { offset, len } => write!(f, "guard@{offset}+{len}"),
        }
    }
}

impl FromStr for Fault {
    type Err = String;

    fn from_str(s: &str) -> Result<Fault, String> {
        let (kind, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("fault `{s}`: expected kind@params"))?;
        let num = |t: &str| -> Result<u64, String> {
            if let Some(hex) = t.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                t.parse()
            }
            .map_err(|e| format!("fault `{s}`: bad number `{t}`: {e}"))
        };
        match kind {
            "read" => Ok(Fault::ReadFault { nth: num(rest)? }),
            "write" => Ok(Fault::WriteFault { nth: num(rest)? }),
            "fuel" => Ok(Fault::FuelCut { after: num(rest)? }),
            "bitflip" => {
                let (n, b) = rest
                    .split_once('.')
                    .ok_or_else(|| format!("fault `{s}`: expected bitflip@nth.bit"))?;
                let bit = num(b)?;
                if bit >= 32 {
                    return Err(format!("fault `{s}`: bit {bit} out of range"));
                }
                Ok(Fault::BitFlip {
                    nth: num(n)?,
                    bit: bit as u8,
                })
            }
            "reserved" => {
                let (n, e) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("fault `{s}`: expected reserved@nth:encoding"))?;
                let encoding = num(e)?;
                let encoding = u32::try_from(encoding)
                    .map_err(|_| format!("fault `{s}`: encoding {encoding:#x} exceeds u32"))?;
                Ok(Fault::Reserved {
                    nth: num(n)?,
                    encoding,
                })
            }
            "guard" => {
                let (o, l) = rest
                    .split_once('+')
                    .ok_or_else(|| format!("fault `{s}`: expected guard@offset+len"))?;
                Ok(Fault::GuardRegion {
                    offset: num(o)?,
                    len: num(l)?,
                })
            }
            other => Err(format!("fault `{s}`: unknown kind `{other}`")),
        }
    }
}

// --------------------------------------------------------------- plans --

/// A serialized, seeded fault schedule for one job.
///
/// Derive one per job with [`FaultPlan::derive`] — every plan is a pure
/// function of `(seed, job_index)` — or parse one back from its `Display`
/// form (`read@17;guard@4096+64`, or `none`), which round-trips exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The armed faults, in derivation order.
    pub faults: Vec<Fault>,
}

/// Ordinals are drawn **log-uniformly** in `[1, 2^15]`: the eight
/// workloads retire anywhere from ~700 (spmv at small n) to ~130 000
/// (seg_quicksort) instructions, so a uniform draw would overshoot the
/// small ones almost always. Log-uniform puts half the draws below ~180 —
/// inside every workload — while still occasionally arming past the end
/// (a valid "fault never fires" scenario).
fn log_uniform(rng: &mut XorShift64, max_exp: u64) -> u64 {
    let e = rng.below(max_exp + 1);
    1 + rng.below(1u64 << e)
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derive the plan for `job_index` under `seed`: one fault always, a
    /// second with probability 1/4, kinds and ordinals drawn from
    /// xorshift64* keyed by the pair.
    pub fn derive(seed: u64, job_index: u64) -> FaultPlan {
        let mut rng = XorShift64::from_pair(seed, job_index);
        let count = if rng.below(4) == 0 { 2 } else { 1 };
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            faults.push(Self::draw(&mut rng));
        }
        FaultPlan { faults }
    }

    fn draw(rng: &mut XorShift64) -> Fault {
        match rng.below(6) {
            0 => Fault::ReadFault {
                nth: log_uniform(rng, 13),
            },
            1 => Fault::WriteFault {
                nth: log_uniform(rng, 12),
            },
            2 => Fault::FuelCut {
                after: log_uniform(rng, 15),
            },
            3 => Fault::BitFlip {
                nth: log_uniform(rng, 15),
                bit: rng.below(32) as u8,
            },
            4 => {
                // Draw candidate words until one fails to decode (almost
                // every random word does; bound the loop for determinism
                // paranoia and fall back to the all-ones word, which is
                // not a valid encoding in the modelled subset).
                let mut encoding = 0xffff_ffff;
                for _ in 0..8 {
                    let w = rng.next_u64() as u32;
                    if decode(w).is_err() {
                        encoding = w;
                        break;
                    }
                }
                Fault::Reserved {
                    nth: log_uniform(rng, 15),
                    encoding,
                }
            }
            _ => Fault::GuardRegion {
                // Cache-line aligned offset within the first 64 KiB of
                // heap — where small-n chaos workloads actually allocate,
                // so an armed guard has a real chance of being hit.
                offset: rng.below(1 << 10) * 64,
                len: 64 * (1 + rng.below(4)),
            },
        }
    }

    /// Every guard range this plan arms (absolute, given the heap base).
    pub fn guard_ranges(&self, heap_base: u64) -> Vec<std::ops::Range<u64>> {
        self.faults
            .iter()
            .filter_map(|f| f.guard_range(heap_base))
            .collect()
    }

    /// Does this plan contain any hook-level fault (anything other than
    /// guard arming)?
    pub fn has_hook_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| !matches!(f, Fault::GuardRegion { .. }))
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "none");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultPlan::none());
        }
        let faults = s
            .split(';')
            .map(Fault::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { faults })
    }
}

// -------------------------------------------------------- crash points --

/// A process-level fault: abort the whole process after the `ordinal`-th
/// journal record is written (1-based). This is the crash-recovery
/// harness's deterministic stand-in for `kill -9` — the sweep dies at a
/// seeded, reproducible point mid-run, and the recovery test resumes the
/// journal and asserts byte-identical results.
///
/// Deliberately **not** a [`Fault`] variant: every `Fault` fires inside
/// the simulator and is handled by the run loop; a `CrashPoint` fires in
/// the *host* process and is handled by nobody — that asymmetry is the
/// whole point, and keeping the types separate keeps [`ArmedFaults`]'s
/// exhaustive match honest about what a hook can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Abort after this many journal records have been written (1-based;
    /// `1` means "crash after the first completed job is durable").
    pub ordinal: u64,
}

impl CrashPoint {
    /// Derive a crash point for a sweep of `jobs` jobs under `seed`: the
    /// ordinal is drawn uniformly from `[1, jobs]`, so the crash lands
    /// after at least one record and before (or exactly at) the last —
    /// always somewhere a resume has real work left or real work done.
    /// Pure function of `(seed, jobs)`, like [`FaultPlan::derive`].
    pub fn derive(seed: u64, jobs: u64) -> CrashPoint {
        debug_assert!(jobs > 0);
        let mut rng = XorShift64::from_pair(seed, 0xc5a5_4e0d);
        CrashPoint {
            ordinal: 1 + rng.below(jobs),
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash@{}", self.ordinal)
    }
}

impl FromStr for CrashPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<CrashPoint, String> {
        let rest = s
            .strip_prefix("crash@")
            .ok_or_else(|| format!("crash point `{s}`: expected crash@ordinal"))?;
        let ordinal: u64 = rest
            .parse()
            .map_err(|e| format!("crash point `{s}`: bad ordinal `{rest}`: {e}"))?;
        if ordinal == 0 {
            return Err(format!("crash point `{s}`: ordinal must be >= 1"));
        }
        Ok(CrashPoint { ordinal })
    }
}

// ---------------------------------------------------------- serve chaos --

/// One submission's chaos decisions for the serve loop, derived like
/// everything else here as a pure function of `(seed, ordinal)`.
///
/// The serve layer's load-shedding, latency, and failure handling are all
/// timing-sensitive paths that genuine load exercises only racily; a
/// seeded `ServeFault` per accepted job drives them deterministically
/// instead — the same seed sheds the same submissions, delays the same
/// jobs, and injects the same machine faults on every run, so chaos-run
/// shed/retry counts are exactly reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeFault {
    /// Refuse this submission as if the queue were full (~1 in 8): the
    /// client sees the same 429 + Retry-After path genuine overload takes.
    pub shed: bool,
    /// Milliseconds of artificial service delay before the job runs
    /// (~1 in 4 draws 1..=20 ms, the rest 0): exercises deadline and
    /// drain paths.
    pub latency_ms: u64,
    /// Machine-level faults injected into the job itself (~1 in 6 get a
    /// non-empty plan): exercises the retry/backoff and failure-reporting
    /// paths.
    pub plan: FaultPlan,
}

impl ServeFault {
    /// No chaos at all.
    pub fn none() -> ServeFault {
        ServeFault {
            shed: false,
            latency_ms: 0,
            plan: FaultPlan::none(),
        }
    }

    /// The chaos decisions for the `ordinal`th accepted submission under
    /// `seed`. Pure function of its arguments, keyed like
    /// [`FaultPlan::derive`].
    pub fn derive(seed: u64, ordinal: u64) -> ServeFault {
        let mut rng = XorShift64::from_pair(seed ^ 0x5e7e_fa11, ordinal);
        let shed = rng.below(8) == 0;
        let latency_ms = if rng.below(4) == 0 {
            1 + rng.below(20)
        } else {
            0
        };
        let plan = if rng.below(6) == 0 {
            FaultPlan::derive(seed, ordinal)
        } else {
            FaultPlan::none()
        };
        ServeFault {
            shed,
            latency_ms,
            plan,
        }
    }
}

// -------------------------------------------------------- storage chaos --

/// What a storage-chaos case does to a journal (or its backend).
///
/// The first three are *file surgery* — applied to journal bytes between
/// a kill and a resume, standing in for bit rot and torn writes at rest.
/// [`StorageFaultKind::LyingFsync`] is a *backend* behaviour (fsyncs that
/// report success without persisting), driven through the chaos storage
/// backend rather than byte editing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// Flip one bit of an interior record's payload.
    BitflipRecord,
    /// Flip one bit of an interior record's length prefix.
    BitflipLength,
    /// Truncate the journal mid-record (a torn tail).
    TornTail,
    /// Run the writer over a backend whose fsyncs sometimes lie, then
    /// crash it.
    LyingFsync,
}

impl StorageFaultKind {
    /// All kinds, in matrix order — the ablation iterates this.
    pub const ALL: [StorageFaultKind; 4] = [
        StorageFaultKind::BitflipRecord,
        StorageFaultKind::BitflipLength,
        StorageFaultKind::TornTail,
        StorageFaultKind::LyingFsync,
    ];

    fn name(self) -> &'static str {
        match self {
            StorageFaultKind::BitflipRecord => "bitflip-record",
            StorageFaultKind::BitflipLength => "bitflip-length",
            StorageFaultKind::TornTail => "torn-tail",
            StorageFaultKind::LyingFsync => "lying-fsync",
        }
    }
}

impl fmt::Display for StorageFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for StorageFaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<StorageFaultKind, String> {
        StorageFaultKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("storage fault kind `{s}`: unknown"))
    }
}

/// One storage-chaos case: a fault kind plus seeded skews that pick the
/// exact victim. `record_skew` selects which interior record (the harness
/// takes it modulo the count of eligible records); `byte_skew` selects
/// the byte/bit within it (modulo the record's size). Pure function of
/// `(seed, case)` via [`StorageFault::derive`], keyed like
/// [`FaultPlan::derive`] — the same seed corrupts the same byte of the
/// same record on every run, which is what makes post-salvage digests
/// comparable across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFault {
    /// What to do.
    pub kind: StorageFaultKind,
    /// Selects the victim record (harness maps it into range).
    pub record_skew: u64,
    /// Selects the victim byte and bit (harness maps it into range).
    pub byte_skew: u64,
}

impl StorageFault {
    /// The storage fault for matrix cell `case` under `seed`.
    pub fn derive(seed: u64, case: u64) -> StorageFault {
        let mut rng = XorShift64::from_pair(seed ^ 0x5c7b_fa11, case);
        let kind = StorageFaultKind::ALL[rng.below(StorageFaultKind::ALL.len() as u64) as usize];
        StorageFault {
            kind,
            record_skew: rng.next_u64(),
            byte_skew: rng.next_u64(),
        }
    }
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@r{:#x}.b{:#x}",
            self.kind, self.record_skew, self.byte_skew
        )
    }
}

impl FromStr for StorageFault {
    type Err = String;

    fn from_str(s: &str) -> Result<StorageFault, String> {
        let (kind, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("storage fault `{s}`: expected kind@rN.bN"))?;
        let kind: StorageFaultKind = kind.parse()?;
        let (r, b) = rest
            .split_once('.')
            .ok_or_else(|| format!("storage fault `{s}`: expected kind@rN.bN"))?;
        let num = |t: &str, tag: char| -> Result<u64, String> {
            let t = t
                .strip_prefix(tag)
                .ok_or_else(|| format!("storage fault `{s}`: expected {tag}<number>"))?;
            let t = t.strip_prefix("0x").unwrap_or(t);
            u64::from_str_radix(t, 16).map_err(|e| format!("storage fault `{s}`: {e}"))
        };
        Ok(StorageFault {
            kind,
            record_skew: num(r, 'r')?,
            byte_skew: num(b, 'b')?,
        })
    }
}

// ---------------------------------------------------------------- hook --

/// A [`FaultHook`] firing the faults of one [`FaultPlan`].
///
/// Purely ordinal-driven: it counts consulted instructions and memory
/// read/write instructions, and fires each armed fault the moment its
/// ordinal comes up. Attach one per job attempt — the counters are the
/// job's, not the launch's, so a fault can fire in any kernel the job
/// launches.
#[derive(Debug, Clone)]
pub struct ArmedFaults {
    faults: Vec<Fault>,
    instrs: u64,
    reads: u64,
    writes: u64,
}

impl ArmedFaults {
    /// Arm `plan`'s faults ([`Fault::GuardRegion`] entries are ignored
    /// here — arm those on the environment's memory).
    pub fn new(plan: &FaultPlan) -> ArmedFaults {
        ArmedFaults {
            faults: plan.faults.clone(),
            instrs: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Instructions consulted so far.
    pub fn instructions_seen(&self) -> u64 {
        self.instrs
    }
}

impl FaultHook for ArmedFaults {
    fn before(&mut self, pc: u64, instr: &Instr, mem: Option<&MemAccess>) -> FaultAction {
        self.instrs += 1;
        if let Some(m) = mem {
            if m.store {
                self.writes += 1;
            } else {
                self.reads += 1;
            }
        }
        for f in &self.faults {
            match *f {
                Fault::ReadFault { nth } => {
                    if mem.is_some_and(|m| !m.store) && self.reads == nth {
                        return FaultAction::Trap(SimError::InjectedFault {
                            what: "read",
                            seq: nth,
                        });
                    }
                }
                Fault::WriteFault { nth } => {
                    if mem.is_some_and(|m| m.store) && self.writes == nth {
                        return FaultAction::Trap(SimError::InjectedFault {
                            what: "write",
                            seq: nth,
                        });
                    }
                }
                Fault::FuelCut { after } => {
                    if self.instrs > after {
                        return FaultAction::Trap(SimError::InjectedFault {
                            what: "fuel",
                            seq: after,
                        });
                    }
                }
                Fault::BitFlip { nth, bit } => {
                    if self.instrs == nth {
                        // Corrupt the real encoding. Instructions that have
                        // no binary encoding cannot be corrupted in flight —
                        // pass (deterministically: encodability depends only
                        // on the instruction).
                        let Ok(word) = encode(instr) else {
                            continue;
                        };
                        let corrupted = word ^ (1u32 << bit);
                        return match decode(corrupted) {
                            Ok(replacement) => FaultAction::Replace(replacement),
                            Err(_) => FaultAction::Trap(SimError::IllegalInstruction {
                                pc,
                                encoding: corrupted,
                            }),
                        };
                    }
                }
                Fault::Reserved { nth, encoding } => {
                    if self.instrs == nth {
                        return FaultAction::Trap(SimError::IllegalInstruction { pc, encoding });
                    }
                }
                Fault::GuardRegion { .. } => {}
            }
        }
        FaultAction::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_key_sensitive() {
        let a: Vec<u64> = {
            let mut r = XorShift64::from_pair(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::from_pair(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64::from_pair(7, 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "job index must change the stream");
        let d: Vec<u64> = {
            let mut r = XorShift64::from_pair(8, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, d, "seed must change the stream");
    }

    #[test]
    fn plans_derive_deterministically() {
        for job in 0..64 {
            assert_eq!(FaultPlan::derive(42, job), FaultPlan::derive(42, job));
        }
        // Different jobs under one seed should not all share a plan.
        let distinct: std::collections::HashSet<String> = (0..64)
            .map(|j| FaultPlan::derive(42, j).to_string())
            .collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn plan_display_roundtrips() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for job in 0..32 {
                let plan = FaultPlan::derive(seed, job);
                let text = plan.to_string();
                let back: FaultPlan = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
                assert_eq!(plan, back, "round-trip of `{text}`");
            }
        }
        assert_eq!("none".parse::<FaultPlan>().unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::none().to_string(), "none");
        assert!("bogus@1".parse::<FaultPlan>().is_err());
        assert!("bitflip@1.99".parse::<FaultPlan>().is_err());
        // Encodings wider than 32 bits must error, not silently truncate.
        assert!("reserved@1:0x1ffffffff".parse::<FaultPlan>().is_err());
        assert!("reserved@1:0xffffffff".parse::<FaultPlan>().is_ok());
    }

    #[test]
    fn reserved_words_do_not_decode() {
        for seed in 0..64u64 {
            for f in FaultPlan::derive(seed, 0).faults {
                if let Fault::Reserved { encoding, .. } = f {
                    assert!(decode(encoding).is_err(), "{encoding:#010x} decodes");
                }
            }
        }
    }

    #[test]
    fn crash_points_derive_in_range_and_roundtrip() {
        for seed in 0..64u64 {
            for jobs in [1u64, 2, 24, 40] {
                let cp = CrashPoint::derive(seed, jobs);
                assert_eq!(cp, CrashPoint::derive(seed, jobs), "pure function");
                assert!((1..=jobs).contains(&cp.ordinal), "{cp} out of [1, {jobs}]");
                assert_eq!(cp.to_string().parse::<CrashPoint>().unwrap(), cp);
            }
        }
        // Different seeds spread over the range.
        let distinct: std::collections::HashSet<u64> =
            (0..64).map(|s| CrashPoint::derive(s, 40).ordinal).collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct ordinals",
            distinct.len()
        );
        assert!("crash@0".parse::<CrashPoint>().is_err());
        assert!("crash@".parse::<CrashPoint>().is_err());
        assert!("kaboom@3".parse::<CrashPoint>().is_err());
        assert_eq!(
            "crash@17".parse::<CrashPoint>().unwrap(),
            CrashPoint { ordinal: 17 }
        );
    }

    #[test]
    fn serve_faults_are_deterministic_and_mixed() {
        for ordinal in 0..32 {
            assert_eq!(
                ServeFault::derive(11, ordinal),
                ServeFault::derive(11, ordinal)
            );
        }
        let draws: Vec<ServeFault> = (0..256).map(|o| ServeFault::derive(3, o)).collect();
        let sheds = draws.iter().filter(|f| f.shed).count();
        let delayed = draws.iter().filter(|f| f.latency_ms > 0).count();
        let faulted = draws.iter().filter(|f| !f.plan.faults.is_empty()).count();
        // Loose distribution checks: each knob fires sometimes, none
        // dominates. (Exact rates are the PRNG's business.)
        assert!((8..=80).contains(&sheds), "sheds={sheds}");
        assert!((20..=140).contains(&delayed), "delayed={delayed}");
        assert!(faulted >= 8, "faulted={faulted}");
        assert!(draws.iter().all(|f| f.latency_ms <= 20));
        let other: Vec<ServeFault> = (0..256).map(|o| ServeFault::derive(4, o)).collect();
        assert_ne!(draws, other, "seed must matter");
        assert_eq!(ServeFault::none(), ServeFault::none());
    }

    #[test]
    fn storage_faults_derive_deterministically_and_roundtrip() {
        for seed in [0u64, 7, 42] {
            for case in 0..24 {
                let f = StorageFault::derive(seed, case);
                assert_eq!(f, StorageFault::derive(seed, case), "pure function");
                let text = f.to_string();
                let back: StorageFault = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
                assert_eq!(f, back, "round-trip of `{text}`");
            }
        }
        // All four kinds appear across a modest matrix.
        let kinds: std::collections::HashSet<String> = (0..32)
            .map(|c| StorageFault::derive(5, c).kind.to_string())
            .collect();
        assert_eq!(kinds.len(), 4, "kinds drawn: {kinds:?}");
        assert!("bitflip-record".parse::<StorageFaultKind>().is_ok());
        assert!("sparks".parse::<StorageFaultKind>().is_err());
        assert!("torn-tail@r1".parse::<StorageFault>().is_err());
    }

    #[test]
    fn guard_range_is_offset_from_heap_base() {
        let f = Fault::GuardRegion {
            offset: 128,
            len: 64,
        };
        assert_eq!(f.guard_range(4096), Some(4224..4288));
        assert_eq!(Fault::ReadFault { nth: 1 }.guard_range(4096), None);
    }
}
