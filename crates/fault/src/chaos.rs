//! The differential chaos harness: run the eight scan-vector algorithms
//! under injected faults, on both engines, and check the robustness
//! contract:
//!
//! 1. **No panic** escapes the library API — every failure is an
//!    `Err(ScanError)`.
//! 2. **No divergence** — the plan engine and the legacy interpreter
//!    produce the same outcome (same fingerprint on success, same trap on
//!    failure) under the same fault plan.
//! 3. **Clean recovery** — after a trap, [`ScanEnv::reset`] restores the
//!    environment to a state that reproduces the unfaulted golden
//!    fingerprint exactly (no `vl`/`vtype`/allocator leak).
//!
//! The harness is shared by the `chaos` integration test (tier-1) and the
//! `ablation_faults` bench binary (scaled-up manifest run).

use crate::{ArmedFaults, FaultPlan, XorShift64};
use rvv_isa::Sew;
use scanvec::{Engine, EnvConfig, ExecEngine, ScanEnv, ScanResult, HEAP_BASE};
use scanvec_algos as algos;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Deterministic per-job instruction budget for chaos runs. Far above any
/// small-`n` algorithm's need (tens of thousands of instructions), far
/// below [`rvv_sim::DEFAULT_FUEL`] — a corrupted branch that spins must
/// burn 2×10⁶ instructions, not 4×10⁹, before the watchdog fires.
pub const CHAOS_FUEL: u64 = 2_000_000;

/// The eight algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAlgo {
    /// Split-based LSD radix sort.
    RadixSort,
    /// Bitonic sorting network.
    Bitonic,
    /// Segmented quicksort.
    SegQuicksort,
    /// Run-length encode + decode round trip.
    Rle,
    /// Bucket histogram.
    Histogram,
    /// Line-of-sight visibility.
    LineOfSight,
    /// Sparse matrix × vector (CSR).
    Spmv,
    /// Convex hull (quickhull).
    Quickhull,
}

impl ChaosAlgo {
    /// Every algorithm, in a fixed order.
    pub const ALL: [ChaosAlgo; 8] = [
        ChaosAlgo::RadixSort,
        ChaosAlgo::Bitonic,
        ChaosAlgo::SegQuicksort,
        ChaosAlgo::Rle,
        ChaosAlgo::Histogram,
        ChaosAlgo::LineOfSight,
        ChaosAlgo::Spmv,
        ChaosAlgo::Quickhull,
    ];

    /// Stable name for manifests.
    pub fn name(self) -> &'static str {
        match self {
            ChaosAlgo::RadixSort => "radix_sort",
            ChaosAlgo::Bitonic => "bitonic",
            ChaosAlgo::SegQuicksort => "seg_quicksort",
            ChaosAlgo::Rle => "rle",
            ChaosAlgo::Histogram => "histogram",
            ChaosAlgo::LineOfSight => "line_of_sight",
            ChaosAlgo::Spmv => "spmv",
            ChaosAlgo::Quickhull => "quickhull",
        }
    }
}

/// FNV-1a over a byte stream — a stable, order-sensitive output
/// fingerprint (not cryptographic; just collision-resistant enough to
/// catch silent corruption).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fp_u32s(words: impl IntoIterator<Item = u32>) -> u64 {
    fnv1a(words.into_iter().flat_map(|w| w.to_le_bytes()))
}

/// Run `algo` on input derived from `data_seed` with problem size `n`.
/// Returns a stable fingerprint string: an FNV hash of the full output
/// plus the dynamic instructions the run retired — two engines (or a
/// recovered environment) agreeing on it agree on everything observable.
pub fn run_algo(
    env: &mut ScanEnv,
    algo: ChaosAlgo,
    data_seed: u64,
    n: usize,
) -> ScanResult<String> {
    let mut rng = XorShift64::from_pair(data_seed, algo as u64);
    let before = env.retired();
    let fp = match algo {
        ChaosAlgo::RadixSort => {
            let data: Vec<u32> = (0..n).map(|_| rng.below(1 << 16) as u32).collect();
            let v = env.from_u32(&data)?;
            algos::split_radix_sort(env, &v, 16)?;
            fp_u32s(env.to_u32(&v))
        }
        ChaosAlgo::Bitonic => {
            let n = n.next_power_of_two();
            let data: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
            let v = env.from_u32(&data)?;
            algos::bitonic_sort(env, &v)?;
            fp_u32s(env.to_u32(&v))
        }
        ChaosAlgo::SegQuicksort => {
            let data: Vec<u32> = (0..n).map(|_| rng.below(10_000) as u32).collect();
            let v = env.from_u32(&data)?;
            algos::seg_quicksort(env, &v)?;
            fp_u32s(env.to_u32(&v))
        }
        ChaosAlgo::Rle => {
            // Runs-heavy data so the encoding actually compresses.
            let mut data = Vec::with_capacity(n);
            while data.len() < n {
                let v = rng.below(8) as u32;
                for _ in 0..=rng.below(6) {
                    if data.len() < n {
                        data.push(v);
                    }
                }
            }
            let v = env.from_u32(&data)?;
            let (rle, _) = algos::rle_encode(env, &v)?;
            let out = env.alloc(Sew::E32, n)?;
            algos::rle_decode(env, &rle, &out)?;
            fp_u32s(
                rle.values
                    .iter()
                    .chain(rle.lengths.iter())
                    .copied()
                    .chain(env.to_u32(&out)),
            )
        }
        ChaosAlgo::Histogram => {
            const BUCKETS: u32 = 32;
            let data: Vec<u32> = (0..n).map(|_| rng.below(BUCKETS as u64) as u32).collect();
            let (counts, _) = algos::histogram(env, &data, BUCKETS)?;
            fp_u32s(counts)
        }
        ChaosAlgo::LineOfSight => {
            let alt: Vec<u32> = (0..n).map(|_| rng.below(1000) as u32).collect();
            let (vis, _) = algos::line_of_sight(env, &alt, 500)?;
            fnv1a(vis.into_iter().map(|b| b as u8))
        }
        ChaosAlgo::Spmv => {
            let rows = n.div_ceil(4).max(1);
            let cols = 64u32;
            let mut values = Vec::new();
            let mut col_idx = Vec::new();
            let mut row_nnz = Vec::with_capacity(rows);
            for _ in 0..rows {
                let nnz = rng.below(5) as u32;
                row_nnz.push(nnz);
                for _ in 0..nnz {
                    values.push(1 + rng.below(100) as u32);
                    col_idx.push(rng.below(cols as u64) as u32);
                }
            }
            let a = algos::CsrMatrix {
                cols,
                values,
                col_idx,
                row_nnz,
            };
            let x: Vec<u32> = (0..cols).map(|_| rng.below(100) as u32).collect();
            let (y, _) = algos::spmv(env, &a, &x)?;
            fp_u32s(y)
        }
        ChaosAlgo::Quickhull => {
            let points: Vec<(u32, u32)> = (0..n.max(3))
                .map(|_| (rng.below(100_000) as u32, rng.below(100_000) as u32))
                .collect();
            let (hull, _) = algos::quickhull(env, &points)?;
            fp_u32s(hull.into_iter().flat_map(|(x, y)| [x, y]))
        }
    };
    Ok(format!("{fp:#018x} r{}", env.retired() - before))
}

/// One chaos scenario's stable outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The fault plan, in its serialized form.
    pub plan: String,
    /// `ok <fingerprint>` or `err <ScanError display>` — identical on both
    /// engines by the time this struct exists.
    pub result: String,
    /// Did the faulted run actually fail (vs. the fault never firing)?
    pub faulted: bool,
}

impl ScenarioOutcome {
    /// One manifest line: `<index> <algo> plan=[...] -> <result>`.
    pub fn line(&self, index: u64, algo: ChaosAlgo) -> String {
        format!(
            "{index:04} {} plan=[{}] -> {}",
            algo.name(),
            self.plan,
            self.result
        )
    }
}

/// Run one seeded fault scenario for `algo` on **every** run-loop tier
/// (plan, legacy, fused) and check the full robustness contract. Every session is created from
/// the shared `engine` — one engine serves the whole chaos sweep, so the
/// kernel cache is warmed once across hundreds of scenarios. `Ok` carries
/// the tier-agreed outcome; `Err` carries a description of the contract
/// violation (panic, engine divergence, or failed recovery) — the chaos
/// test asserts no scenario returns `Err`.
pub fn run_scenario(
    cfg: EnvConfig,
    engine: &Arc<Engine>,
    algo: ChaosAlgo,
    seed: u64,
    index: u64,
    n: usize,
) -> Result<ScenarioOutcome, String> {
    let fault_plan = FaultPlan::derive(seed, index);
    // Input data depends on the seed and the algorithm but NOT the scenario
    // index, so each (algo, cfg) pair has one golden fingerprint shared by
    // every scenario — and recovery is checked against real, cached truth.
    let data_seed = mix_data_seed(seed, algo);

    let mut agreed: Option<(String, bool)> = None;
    for exec in [ExecEngine::Plan, ExecEngine::Legacy, ExecEngine::Fused] {
        let mut env = engine
            .session(cfg)
            .map_err(|e| format!("chaos config rejected: {e}"))?;
        env.set_exec_engine(exec);

        // Golden: unfaulted run in this very session (also warms the
        // kernel cache so the faulted attempt can't fail inside `kernel`).
        let golden = run_algo(&mut env, algo, data_seed, n)
            .map_err(|e| format!("{} unfaulted run failed on {exec:?}: {e}", algo.name()))?;
        // `reset()` reverts to the engine's default tier — re-select, or
        // the Legacy iteration would silently run (and compare) Plan vs
        // Plan.
        env.reset();
        env.set_exec_engine(exec);

        // Arm the plan: guards on memory, everything else via the hook.
        for r in fault_plan.guard_ranges(HEAP_BASE) {
            env.machine_mut().mem.add_guard(r);
        }
        env.attach_fault_hook(Box::new(ArmedFaults::new(&fault_plan)));
        env.set_fuel_budget(Some(CHAOS_FUEL));

        // Contract 1: no panic escapes.
        assert_eq!(env.exec_engine(), exec, "faulted run must use {exec:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| run_algo(&mut env, algo, data_seed, n)))
            .map_err(|p| {
                format!(
                    "PANIC on {exec:?} {} scenario {index} plan=[{fault_plan}]: {}",
                    algo.name(),
                    panic_text(&p),
                )
            })?;
        let faulted = outcome.is_err();
        let result = match outcome {
            Ok(fp) => format!("ok {fp}"),
            Err(e) => format!("err {e}"),
        };

        // Contract 3: reset() after the (possibly trapped) run restores a
        // state that reproduces the golden fingerprint bit-exactly.
        env.reset();
        env.set_exec_engine(exec);
        assert_eq!(env.exec_engine(), exec, "recovery run must use {exec:?}");
        let recovered = run_algo(&mut env, algo, data_seed, n).map_err(|e| {
            format!(
                "post-reset run failed on {exec:?} {} scenario {index} plan=[{fault_plan}]: {e}",
                algo.name()
            )
        })?;
        if recovered != golden {
            return Err(format!(
                "SILENT CORRUPTION on {exec:?} {} scenario {index} plan=[{fault_plan}]: \
                 recovered `{recovered}` != golden `{golden}`",
                algo.name()
            ));
        }

        // Contract 2: every run-loop tier agrees on the faulted outcome.
        match &agreed {
            None => agreed = Some((result, faulted)),
            Some((first, _)) if *first != result => {
                return Err(format!(
                    "ENGINE DIVERGENCE {} scenario {index} plan=[{fault_plan}]: \
                     Plan `{first}` vs {exec:?} `{result}`",
                    algo.name()
                ));
            }
            Some(_) => {}
        }
    }

    let (result, faulted) = agreed.expect("all run-loop tiers ran");
    Ok(ScenarioOutcome {
        plan: fault_plan.to_string(),
        result,
        faulted,
    })
}

fn mix_data_seed(seed: u64, algo: ChaosAlgo) -> u64 {
    seed ^ (0x5ca1_ab1e_0000_0000 | algo as u64)
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A small environment configuration for chaos runs: VLEN 256, modest
/// device memory (the workloads are tiny; 8 MiB keeps env construction
/// cheap across hundreds of scenarios).
pub fn chaos_config() -> EnvConfig {
    EnvConfig {
        mem_bytes: 8 << 20,
        ..EnvConfig::with_vlen(256)
    }
}
