//! Mid-program checkpoint exactness over the differential suite: every
//! one of the eight scan-vector algorithms, paused mid-run by the
//! deterministic fuel watchdog on **every** engine tier, snapshots to
//! bytes and restores into a fresh environment bit-for-bit — and the
//! paused machine state is identical across engines (the watchdog fires
//! at the same instruction everywhere, so a checkpoint taken "at the
//! budget line" is engine-independent, fused windows included).

use rvv_fault::chaos::{chaos_config, run_algo, ChaosAlgo};
use scanvec::{Engine, EnvSnapshot, ExecEngine, ScanError};
use std::sync::Arc;

const N: usize = 64;
const DATA_SEED: u64 = 0xfeed_beef;

/// Instructions a full, unfaulted run of `algo` retires.
fn golden_retired(engine: &Arc<Engine>, algo: ChaosAlgo) -> u64 {
    let mut env = engine.session(chaos_config()).unwrap();
    run_algo(&mut env, algo, DATA_SEED, N).expect("unfaulted run succeeds");
    env.retired()
}

#[test]
fn every_algorithm_snapshots_exactly_mid_program_on_every_engine() {
    let shared = Arc::new(Engine::new());
    for algo in ChaosAlgo::ALL {
        let total = golden_retired(&shared, algo);
        let budget = (total / 2).max(1);
        let mut mid_states: Vec<rvv_sim::MachineSnapshot> = Vec::new();

        for engine in [ExecEngine::Plan, ExecEngine::Legacy, ExecEngine::Fused] {
            // Pause the algorithm at the budget line.
            let mut env = shared.session(chaos_config()).unwrap();
            env.set_exec_engine(engine);
            env.set_fuel_budget(Some(budget));
            let err = run_algo(&mut env, algo, DATA_SEED, N)
                .expect_err("half the golden budget must interrupt the run");
            assert!(
                matches!(
                    err,
                    ScanError::Sim(rvv_sim::SimError::FuelExhausted { fuel }) if fuel == budget
                ),
                "{}/{engine:?}: unexpected pause error: {err}",
                algo.name()
            );

            // The mid-program state round-trips through bytes exactly.
            let snap = env.snapshot();
            let decoded = EnvSnapshot::from_bytes(&snap.to_bytes())
                .unwrap_or_else(|e| panic!("{}/{engine:?}: {e}", algo.name()));
            assert_eq!(decoded, snap, "{}/{engine:?}", algo.name());

            // ...and restores into a fresh environment bit-for-bit. (The
            // fresh env has an empty plan cache, so compare everything a
            // restore is contracted to reproduce — the key inventory is
            // informational and rebuilt on demand.)
            let mut fresh = Engine::new().session(chaos_config()).unwrap();
            fresh.restore(&decoded).unwrap();
            let restored = fresh.snapshot();
            assert_eq!(restored.machine, snap.machine, "{}/{engine:?}", algo.name());
            assert_eq!(
                (restored.heap, restored.engine, restored.poisoned),
                (snap.heap, snap.engine, snap.poisoned),
                "{}/{engine:?}",
                algo.name()
            );

            // A restored environment recovers like a reset one: wipe and
            // rerun, and the golden fingerprint comes back exactly.
            let golden = {
                let mut g = shared.session(chaos_config()).unwrap();
                run_algo(&mut g, algo, DATA_SEED, N).unwrap()
            };
            fresh.reset();
            fresh.set_exec_engine(engine);
            let rerun = run_algo(&mut fresh, algo, DATA_SEED, N)
                .unwrap_or_else(|e| panic!("{}/{engine:?}: post-restore rerun: {e}", algo.name()));
            assert_eq!(rerun, golden, "{}/{engine:?}", algo.name());

            mid_states.push(snap.machine);
        }

        // The watchdog is engine-independent, so the checkpoint is too:
        // all engines paused in the *identical* architectural state — a
        // snapshot taken mid-program on one tier resumes on any other.
        assert_eq!(
            mid_states[0],
            mid_states[1],
            "{}: Plan and Legacy mid-program checkpoints differ",
            algo.name()
        );
        assert_eq!(
            mid_states[0],
            mid_states[2],
            "{}: Plan and Fused mid-program checkpoints differ",
            algo.name()
        );
    }
}
