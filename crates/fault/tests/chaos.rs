//! The no-panic audit: ≥200 seeded fault scenarios across all eight
//! algorithms, each run on **both** engines, asserting the robustness
//! contract (no panic escapes, engines agree, reset recovers golden
//! state). One `#[test]` per algorithm so the scenarios run in parallel
//! under the default test harness.
//!
//! Every scenario is a pure function of `CHAOS_SEED` and its index —
//! rerunning this suite anywhere reproduces the exact same faults at the
//! exact same instructions.

use rvv_fault::chaos::{chaos_config, run_scenario, ChaosAlgo};
use scanvec::Engine;
use std::sync::Arc;

/// Fixed suite seed. Changing it is a (deliberate) change to which faults
/// the suite exercises.
const CHAOS_SEED: u64 = 0x5eed_fa17_2026_0807;

/// Scenarios per algorithm: 8 × 25 = 200 total.
const PER_ALGO: u64 = 25;

fn chaos(algo: ChaosAlgo, algo_index: u64) {
    let cfg = chaos_config();
    let engine = Arc::new(Engine::new());
    let mut fired = 0;
    for i in 0..PER_ALGO {
        // Globally unique scenario index → unique fault plan per scenario.
        let index = algo_index * PER_ALGO + i;
        // Vary problem size with the scenario so fault ordinals land in
        // different phases of each algorithm.
        let n = 64 + (index as usize % 4) * 32;
        let outcome = run_scenario(cfg, &engine, algo, CHAOS_SEED, index, n)
            .unwrap_or_else(|violation| panic!("{violation}"));
        if outcome.faulted {
            fired += 1;
        }
    }
    // The suite must actually exercise failures, not vacuously pass with
    // plans that all miss.
    assert!(
        fired >= PER_ALGO / 4,
        "{}: only {fired}/{PER_ALGO} scenarios faulted — fault plans are not firing",
        algo.name()
    );
}

#[test]
fn chaos_radix_sort() {
    chaos(ChaosAlgo::RadixSort, 0);
}

#[test]
fn chaos_bitonic() {
    chaos(ChaosAlgo::Bitonic, 1);
}

#[test]
fn chaos_seg_quicksort() {
    chaos(ChaosAlgo::SegQuicksort, 2);
}

#[test]
fn chaos_rle() {
    chaos(ChaosAlgo::Rle, 3);
}

#[test]
fn chaos_histogram() {
    chaos(ChaosAlgo::Histogram, 4);
}

#[test]
fn chaos_line_of_sight() {
    chaos(ChaosAlgo::LineOfSight, 5);
}

#[test]
fn chaos_spmv() {
    chaos(ChaosAlgo::Spmv, 6);
}

#[test]
fn chaos_quickhull() {
    chaos(ChaosAlgo::Quickhull, 7);
}

/// The whole suite is deterministic: running one scenario twice produces
/// byte-identical outcomes (plan, result, fired flag).
#[test]
fn scenarios_are_reproducible() {
    let cfg = chaos_config();
    let engine = Arc::new(Engine::new());
    for index in [0u64, 17, 99, 163] {
        let algo = ChaosAlgo::ALL[(index % 8) as usize];
        let a = run_scenario(cfg, &engine, algo, CHAOS_SEED, index, 96).unwrap();
        let b = run_scenario(cfg, &engine, algo, CHAOS_SEED, index, 96).unwrap();
        assert_eq!(a, b, "scenario {index} not reproducible");
    }
}
