//! Property tests for the fault-injection wire formats: every `Fault`,
//! `FaultPlan`, and `CrashPoint` round-trips through its `Display` form,
//! and parsing arbitrary garbage never panics — these strings live in
//! manifests and journals, so the codec has to be total.

use proptest::prelude::*;
use rvv_fault::{CrashPoint, Fault, FaultPlan};
use std::str::FromStr;

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (1u64..=1 << 16).prop_map(|nth| Fault::ReadFault { nth }),
        (1u64..=1 << 16).prop_map(|nth| Fault::WriteFault { nth }),
        (1u64..=1 << 16).prop_map(|after| Fault::FuelCut { after }),
        ((1u64..=1 << 16), 0u8..32).prop_map(|(nth, bit)| Fault::BitFlip { nth, bit }),
        ((1u64..=1 << 16), any::<u32>())
            .prop_map(|(nth, encoding)| Fault::Reserved { nth, encoding }),
        (any::<u64>(), any::<u64>()).prop_map(|(offset, len)| Fault::GuardRegion { offset, len }),
    ]
}

proptest! {
    #[test]
    fn every_fault_roundtrips_through_display(fault in arb_fault()) {
        let text = fault.to_string();
        let back = Fault::from_str(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(back, fault);
    }

    #[test]
    fn every_plan_roundtrips_through_display(
        faults in proptest::collection::vec(arb_fault(), 0..6)
    ) {
        let plan = FaultPlan { faults };
        let text = plan.to_string();
        let back: FaultPlan = text.parse()
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn derived_plans_roundtrip(seed in any::<u64>(), job in 0u64..4096) {
        let plan = FaultPlan::derive(seed, job);
        prop_assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn crash_points_roundtrip(ordinal in 1u64..=u64::MAX) {
        let cp = CrashPoint { ordinal };
        prop_assert_eq!(cp.to_string().parse::<CrashPoint>().unwrap(), cp);
    }

    #[test]
    fn parsing_arbitrary_strings_never_panics(
        prefix in prop_oneof![
            Just(""), Just("read@"), Just("write@"), Just("fuel@"),
            Just("bitflip@"), Just("reserved@"), Just("guard@"), Just("crash@"),
        ],
        chars in proptest::collection::vec(any::<char>(), 0..24),
    ) {
        let s: String = prefix.chars().chain(chars).collect();
        // Totality: garbage must yield Err, not a panic. (A string that
        // happens to parse must re-render to something that parses to the
        // same value — Display/FromStr agree on the canonical form.)
        if let Ok(f) = Fault::from_str(&s) {
            prop_assert_eq!(Fault::from_str(&f.to_string()).unwrap(), f);
        }
        if let Ok(p) = s.parse::<FaultPlan>() {
            prop_assert_eq!(p.to_string().parse::<FaultPlan>().unwrap(), p);
        }
        if let Ok(c) = s.parse::<CrashPoint>() {
            prop_assert_eq!(c.to_string().parse::<CrashPoint>().unwrap(), c);
        }
    }
}
