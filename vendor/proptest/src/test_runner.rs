//! Runner configuration, the deterministic test RNG, and case errors.

use std::fmt;

/// Subset of real proptest's configuration: only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    /// `true` for `prop_assume!` discards (the case is retried, not
    /// failed).
    pub is_rejection: bool,
}

impl TestCaseError {
    /// A genuine assertion failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
            is_rejection: false,
        }
    }

    /// A `prop_assume!` discard.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
            is_rejection: true,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test generator (SplitMix64). Each test name maps to a
/// fixed case sequence, so failures reproduce across runs without
/// persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test name (FNV-1a), so every test gets its own
    /// stable stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `[0, n)` for spans up to `2^64` (used by
    /// full-width integer range strategies).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0);
        if n <= u64::MAX as u128 {
            self.below(n as u64) as u128
        } else {
            // n == 2^64 (the largest span any 64-bit range produces).
            self.next_u64() as u128
        }
    }
}
