//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the real proptest
//! cannot be fetched. This crate re-implements the subset the workspace's
//! property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_filter_map`, `prop_flat_map`, and `boxed`.
//! * Strategies for integer ranges, tuples (up to 8), [`strategy::Just`],
//!   and [`arbitrary::any`] over primitives.
//! * [`collection::vec`] with exact, `a..b`, and `a..=b` size ranges.
//! * The [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`] macros.
//! * [`test_runner::ProptestConfig`] (`with_cases`, `cases`).
//!
//! Differences from real proptest, deliberate for an offline test stub:
//! no shrinking (failures report the original generated inputs), no
//! failure-persistence files (existing `.proptest-regressions` files are
//! ignored), and deterministic per-test seeding (a test's case sequence is
//! stable across runs).

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

/// The `prop::` namespace tests reach through the prelude
/// (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::arbitrary;
    pub use crate::collection;
    pub use crate::strategy;
    pub use crate::test_runner;
}

/// Everything a property test imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run one test body over `config.cases` generated cases. Used by the
/// [`proptest!`] macro expansion; not part of the public proptest API.
pub fn run_cases<V: std::fmt::Debug>(
    config: &test_runner::ProptestConfig,
    test_name: &str,
    generate: impl Fn(&mut test_runner::TestRng) -> Option<V>,
    run: impl Fn(V) -> Result<(), test_runner::TestCaseError>,
) {
    let mut rng = test_runner::TestRng::for_test(test_name);
    let mut rejects: u64 = 0;
    let max_rejects = (config.cases as u64).saturating_mul(64).max(4096);
    let mut case: u32 = 0;
    while case < config.cases {
        let value = match generate(&mut rng) {
            Some(v) => v,
            None => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{test_name}': too many generator rejections \
                     ({rejects}); loosen the filters"
                );
                continue;
            }
        };
        let described = format!("{value:?}");
        match run(value) {
            Ok(()) => case += 1,
            Err(e) if e.is_rejection => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{test_name}': too many prop_assume! discards \
                     ({rejects}); loosen the assumptions"
                );
            }
            Err(e) => panic!(
                "proptest '{test_name}' failed at case {case}/{}:\n  {e}\n  \
                 inputs: {described}",
                config.cases
            ),
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args…)`: fail the
/// current case without panicking the generator loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                    stringify!($a), stringify!($b), a, b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n  right: {:?}",
                    format!($($fmt)+), a, b
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a), stringify!($b), a
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), a),
            ));
        }
    }};
}

/// `prop_assume!(cond)`: silently discard the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Weighted or unweighted union of strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The test-definition macro: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(
                &config,
                stringify!($name),
                |rng| {
                    Some(($(
                        $crate::strategy::Strategy::generate(&($strat), rng)?,
                    )+))
                },
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
