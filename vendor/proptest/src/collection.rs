//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Accepted size arguments for [`vec`]: an exact length, `a..b`, or
/// `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<E::Value>` with a length drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<E::Value>> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // Give a filtered element strategy a few chances before
            // rejecting the whole vector.
            let mut tries = 0;
            loop {
                if let Some(v) = self.element.generate(rng) {
                    out.push(v);
                    break;
                }
                tries += 1;
                if tries >= 16 {
                    return None;
                }
            }
        }
        Some(out)
    }
}
