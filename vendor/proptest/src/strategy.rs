//! The strategy abstraction: a recipe for generating values.
//!
//! Unlike real proptest there is no `ValueTree`/shrinking layer — a
//! strategy is just a generation function. `generate` returns `None` when a
//! filter rejects the draw; the runner retries with fresh randomness.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value; `None` means a filter rejected this draw.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Transform and filter in one step (`None` rejects the draw).
    fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        _whence: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<Self::Value>;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Weighted union of same-valued strategies (built by
/// [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V: Debug> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics on zero total weight.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total_weight: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting covers the whole range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below_u128(span);
                Some((self.start as i128 + off as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = rng.below_u128(span);
                Some((lo as i128 + off as i128) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
