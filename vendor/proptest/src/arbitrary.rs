//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw a uniform value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (uniform over the whole type).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary_value(rng))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> i128 {
        u128::arbitrary_value(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value — enough diversity
        // for text-ish tests without real proptest's char machinery.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}')
        } else {
            (b' ' + (rng.below(95)) as u8) as char
        }
    }
}
