//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins no network registry, so the real `rand` cannot be
//! fetched in the build environment. This crate re-implements exactly the
//! surface the workspace uses — `rngs::StdRng`, [`SeedableRng`],
//! [`Rng::random`], [`Rng::random_range`] over integer ranges — on top of a
//! xoshiro256** generator seeded through SplitMix64. It is deterministic,
//! seedable, and statistically solid for test-data generation; it is **not**
//! cryptographically secure and makes no distribution-quality claims beyond
//! what the tests and benches here need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Random: Sized {
    /// Draw a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64 as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// The user-facing generator marker (blanket-implemented over every
/// [`RngCore`]). Sampling methods live on [`RngExt`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value of any [`Random`] type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value from an integer range (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 stream expands the seed into full generator state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

/// Everything a test usually imports.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Random, Rng, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: u64 = r.random_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(2);
        let _: u64 = r.random_range(0..u64::MAX);
        let _: i64 = r.random_range(i64::MIN..=i64::MAX);
        let _: u8 = r.random_range(0..=u8::MAX);
    }

    #[test]
    fn bool_and_floats() {
        let mut r = StdRng::seed_from_u64(3);
        let mut trues = 0;
        for _ in 0..1000 {
            if r.random::<bool>() {
                trues += 1;
            }
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&trues), "{trues}");
    }
}
