//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, the `criterion_group!` / `criterion_main!` macros — with a
//! simple measurement loop: warm up once, then time batches until ~1 s or
//! `sample_size` iterations, whichever comes first, and print
//! mean/min/throughput per benchmark. No statistics beyond that, no HTML
//! reports, no comparison baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Bench outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&id.to_string(), 10, None, f);
    }
}

/// A named benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Cap on measured iterations (criterion's sample count; here simply
    /// the iteration budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted and ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iters: usize,
    total: Duration,
    min: Duration,
    measured: usize,
}

impl Bencher {
    /// Time `f`, once per requested iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside the measurement.
        black_box(f());
        let budget = Duration::from_secs(1);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.measured += 1;
            if self.total >= budget {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: sample_size,
        total: Duration::ZERO,
        min: Duration::MAX,
        measured: 0,
    };
    f(&mut b);
    if b.measured == 0 {
        println!("{label:44} (no measurement)");
        return;
    }
    let mean = b.total / b.measured as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:>12.0} elem/s", per_sec)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:>12.0} B/s", per_sec)
        }
        None => String::new(),
    };
    println!(
        "{label:44} mean {:>12?}  min {:>12?}  ({} iters){rate}",
        mean, b.min, b.measured
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
