//! Umbrella crate for the scan-vector-model-on-RVV reproduction.
//!
//! Re-exports the workspace crates so the examples under `examples/` and the
//! integration tests under `tests/` can reach everything through one
//! dependency. See the repository `README.md` for the architecture overview
//! and `DESIGN.md` for the per-experiment index.

pub use rvv_asm as asm;
pub use rvv_isa as isa;
pub use rvv_sim as sim;
pub use rvv_trace as trace;
pub use scanvec as core;
pub use scanvec_algos as algos;
