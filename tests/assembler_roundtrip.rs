//! Assembler round-trip: `parse(program.to_string()) == program` for every
//! generated kernel — the disassembler and the textual assembler are exact
//! inverses over the whole kernel corpus, numeric branch offsets included.

use scan_vector_rvv::asm::{parse_program, SpillProfile};
use scan_vector_rvv::core::kernels;
use scan_vector_rvv::core::{EnvConfig, ScanKind, ScanOp};
use scan_vector_rvv::isa::{Lmul, Sew, VAluOp, VCmp};
use scan_vector_rvv::sim::Program;

fn check_roundtrip(p: &Program) {
    let text = p.to_string();
    let back = parse_program(&p.name, &text)
        .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}\n{text}", p.name));
    assert_eq!(
        back.instrs, p.instrs,
        "{} disassembly did not round-trip:\n{text}",
        p.name
    );
}

#[test]
fn every_kernel_roundtrips_through_text() {
    for lmul in [Lmul::M1, Lmul::M8] {
        let cfg = EnvConfig {
            vlen: 1024,
            lmul,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 1 << 20,
        };
        for sew in [Sew::E8, Sew::E32, Sew::E64] {
            for p in [
                kernels::build_elem_vx(&cfg, sew, VAluOp::Add).unwrap(),
                kernels::build_elem_vv(&cfg, sew, VAluOp::Mul).unwrap(),
                kernels::build_get_flags(&cfg, sew).unwrap(),
                kernels::build_select(&cfg, sew).unwrap(),
                kernels::build_permute(&cfg, sew).unwrap(),
                kernels::build_pack(&cfg, sew).unwrap(),
                kernels::build_enumerate(&cfg, sew).unwrap(),
                kernels::build_enumerate_via_scan(&cfg, sew).unwrap(),
                kernels::build_copy(&cfg, sew).unwrap(),
                kernels::build_reverse(&cfg, sew).unwrap(),
                kernels::build_gather(&cfg, sew).unwrap(),
                kernels::build_iota(&cfg, sew).unwrap(),
                kernels::build_cmp_flags(&cfg, sew, VCmp::Ltu).unwrap(),
                kernels::build_deinterleave(&cfg, sew).unwrap(),
                kernels::build_interleave_lane(&cfg, sew).unwrap(),
                kernels::build_scan(&cfg, sew, ScanOp::Plus, ScanKind::Inclusive).unwrap(),
                kernels::build_scan(&cfg, sew, ScanOp::Max, ScanKind::Exclusive).unwrap(),
                kernels::build_seg_scan(&cfg, sew, ScanOp::Plus).unwrap(),
                kernels::build_reduce(&cfg, sew, ScanOp::Min).unwrap(),
                kernels::build_elem_vx_vls(&cfg, sew, VAluOp::Add).unwrap(),
                kernels::build_scan_baseline(&cfg, sew, ScanOp::Max).unwrap(),
                kernels::build_seg_scan_baseline(&cfg, sew, ScanOp::Plus).unwrap(),
            ] {
                check_roundtrip(&p);
            }
        }
    }
    check_roundtrip(&scan_vector_rvv::algos::build_qsort(Sew::E32).unwrap());
}

#[test]
fn hand_written_assembly_with_labels_runs() {
    use scan_vector_rvv::isa::XReg;
    use scan_vector_rvv::sim::{Machine, MachineConfig};
    // Sum the integers 1..=10 with a labelled loop, then vectorize a splat
    // to prove vector mnemonics parse too.
    let src = r#"
        # scalar: a0 = sum(1..=10)
        addi x5, x0, 10
        addi x10, x0, 0
    loop:
        add  x10, x10, x5
        addi x5, x5, -1
        bnez_is_not_real_but_bne_is: # labels can precede anything
        bne  x5, x0, loop
        // vector: store 4 copies of a0 at 0x100
        addi x6, x0, 4
        vsetvli x0, x6, e32, m1, ta, mu
        vmv.v.x v8, x10
        addi x7, x0, 0x100
        vse32.v v8, (x7)
        ecall
    "#;
    let p = parse_program("sum", src).unwrap();
    let mut m = Machine::new(MachineConfig {
        vlen: 128,
        mem_bytes: 4096,
    });
    m.run_default(&p).unwrap();
    assert_eq!(m.xreg(XReg::arg(0)), 55);
    assert_eq!(m.mem.read_u32_slice(0x100, 4), vec![55; 4]);
}

#[test]
fn parse_errors_carry_line_numbers() {
    let err = parse_program("bad", "addi x5, x0, 1\nfrobnicate x1, x2\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.msg.contains("frobnicate"));

    let err = parse_program("bad", "addi x99, x0, 1").unwrap_err();
    assert!(err.msg.contains("x99"));

    let err = parse_program("bad", "beq x0, x0, nowhere").unwrap_err();
    assert!(err.msg.contains("nowhere"));

    let err = parse_program("bad", "vsetvli x0, x5, e32, m3, ta, mu").unwrap_err();
    assert!(err.msg.contains("m3"));
}

#[test]
fn masked_and_fractional_forms_parse() {
    let src = "vsetvli x0, x5, e16, mf2, tu, ma\nvadd.vv v8, v9, v10, v0.t\necall\n";
    let p = parse_program("m", src).unwrap();
    assert_eq!(p.instrs.len(), 3);
    let text = p.to_string();
    assert!(text.contains("mf2") && text.contains("v0.t"), "{text}");
    let back = parse_program("m", &text).unwrap();
    assert_eq!(back.instrs, p.instrs);
}
