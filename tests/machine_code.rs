//! Every generated kernel is genuine RISC-V machine code: assembling it
//! to 32-bit words and decoding those words reproduces the program, for
//! every primitive across every configuration.

use scan_vector_rvv::asm::SpillProfile;
use scan_vector_rvv::core::kernels;
use scan_vector_rvv::core::EnvConfig;
use scan_vector_rvv::core::{ScanKind, ScanOp};
use scan_vector_rvv::isa::{decode, Lmul, Sew};
use scan_vector_rvv::sim::Program;

fn check_roundtrip(p: &Program) {
    let bytes = p
        .assemble()
        .unwrap_or_else(|e| panic!("{} failed to assemble: {e}", p.name));
    assert_eq!(bytes.len(), p.instrs.len() * 4);
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let w = u32::from_le_bytes(chunk.try_into().unwrap());
        let back = decode(w)
            .unwrap_or_else(|e| panic!("{}[{i}] = {:#010x} failed to decode: {e}", p.name, w));
        assert_eq!(back, p.instrs[i], "{}[{i}] decode mismatch", p.name);
    }
}

fn all_kernels(cfg: &EnvConfig, sew: Sew) -> Vec<Program> {
    let mut ps = vec![
        kernels::build_elem_vx(cfg, sew, scan_vector_rvv::isa::VAluOp::Add).unwrap(),
        kernels::build_elem_vv(cfg, sew, scan_vector_rvv::isa::VAluOp::Mul).unwrap(),
        kernels::build_get_flags(cfg, sew).unwrap(),
        kernels::build_select(cfg, sew).unwrap(),
        kernels::build_permute(cfg, sew).unwrap(),
        kernels::build_pack(cfg, sew).unwrap(),
        kernels::build_enumerate(cfg, sew).unwrap(),
        kernels::build_enumerate_via_scan(cfg, sew).unwrap(),
        kernels::build_copy(cfg, sew).unwrap(),
        kernels::build_reverse(cfg, sew).unwrap(),
        kernels::build_gather(cfg, sew).unwrap(),
        kernels::build_iota(cfg, sew).unwrap(),
        kernels::build_cmp_flags(cfg, sew, scan_vector_rvv::isa::VCmp::Ltu).unwrap(),
        kernels::build_cmp_flags(cfg, sew, scan_vector_rvv::isa::VCmp::Gtu).unwrap(),
        kernels::build_elem_baseline(cfg, sew, ScanOp::Plus).unwrap(),
        kernels::build_scan_baseline(cfg, sew, ScanOp::Max).unwrap(),
        kernels::build_seg_scan_baseline(cfg, sew, ScanOp::Plus).unwrap(),
        kernels::build_enumerate_baseline(cfg, sew).unwrap(),
        kernels::build_select_baseline(cfg, sew).unwrap(),
        kernels::build_permute_baseline(cfg, sew).unwrap(),
    ];
    for op in ScanOp::ALL {
        ps.push(kernels::build_scan(cfg, sew, op, ScanKind::Inclusive).unwrap());
        ps.push(kernels::build_scan(cfg, sew, op, ScanKind::Exclusive).unwrap());
        ps.push(kernels::build_seg_scan(cfg, sew, op).unwrap());
        ps.push(kernels::build_reduce(cfg, sew, op).unwrap());
    }
    ps
}

#[test]
fn every_kernel_assembles_and_decodes() {
    for vlen in [128u32, 1024] {
        for lmul in Lmul::ALL {
            for profile in [SpillProfile::llvm14(), SpillProfile::ideal()] {
                let cfg = EnvConfig {
                    vlen,
                    lmul,
                    spill_profile: profile,
                    mem_bytes: 1 << 20,
                };
                for sew in [Sew::E8, Sew::E32, Sew::E64] {
                    for p in all_kernels(&cfg, sew) {
                        check_roundtrip(&p);
                    }
                }
            }
        }
    }
}

#[test]
fn qsort_baseline_is_machine_code() {
    for sew in Sew::ALL {
        check_roundtrip(&scan_vector_rvv::algos::build_qsort(sew).unwrap());
    }
}

#[test]
fn disassembly_is_readable() {
    let cfg = EnvConfig::paper_default();
    let p = kernels::build_seg_scan(&cfg, Sew::E32, ScanOp::Plus).unwrap();
    let text = p.to_string();
    // Spot-check the mnemonics the paper's Listing 10 revolves around.
    for needle in [
        "vsetvli",
        "vmsbf.m",
        "vslideup.vx",
        "vadd.vv",
        "v0.t",
        "vmsne",
    ] {
        assert!(
            text.contains(needle),
            "disassembly missing {needle}:\n{text}"
        );
    }
}

#[test]
fn spilling_kernel_contains_whole_register_moves() {
    let cfg = EnvConfig {
        vlen: 1024,
        lmul: Lmul::M8,
        spill_profile: SpillProfile::llvm14(),
        mem_bytes: 1 << 20,
    };
    let p = kernels::build_seg_scan(&cfg, Sew::E32, ScanOp::Plus).unwrap();
    let text = p.to_string();
    assert!(text.contains("vl8re8.v"), "expected spill reloads:\n{text}");
    assert!(text.contains("vs8r.v"), "expected spill stores:\n{text}");
    // And the LMUL=1 build must not spill.
    let cfg1 = EnvConfig {
        lmul: Lmul::M1,
        ..cfg
    };
    let p1 = kernels::build_seg_scan(&cfg1, Sew::E32, ScanOp::Plus).unwrap();
    let t1 = p1.to_string();
    assert!(!t1.contains("vl8re8.v") && !t1.contains("vs8r.v"));
}
