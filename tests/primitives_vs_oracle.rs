//! Property tests: every simulated primitive agrees with the pure-Rust
//! oracle (`scanvec::native`) across random data, VLEN, LMUL, and element
//! width. This is the core correctness argument for the whole stack:
//! ISA model → simulator → assembler → kernels.

use proptest::prelude::*;
use rand::SeedableRng;
use scan_vector_rvv::asm::SpillProfile;
use scan_vector_rvv::core::native;
use scan_vector_rvv::core::primitives as p;
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::core::{ScanKind, ScanOp};
use scan_vector_rvv::isa::{Lmul, Sew};

fn vlen() -> impl Strategy<Value = u32> {
    prop_oneof![Just(128u32), Just(256), Just(512), Just(1024)]
}

fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![
        Just(Lmul::M1),
        Just(Lmul::M2),
        Just(Lmul::M4),
        Just(Lmul::M8)
    ]
}

fn scan_op() -> impl Strategy<Value = ScanOp> {
    prop_oneof![
        Just(ScanOp::Plus),
        Just(ScanOp::Max),
        Just(ScanOp::Min),
        Just(ScanOp::And),
        Just(ScanOp::Or),
        Just(ScanOp::Xor),
    ]
}

fn env(vlen_bits: u32, l: Lmul) -> ScanEnv {
    ScanEnv::new(EnvConfig {
        vlen: vlen_bits,
        lmul: l,
        spill_profile: SpillProfile::llvm14(),
        mem_bytes: 16 << 20,
    })
}

fn head_flags(n: usize, seed: u64) -> Vec<u32> {
    use rand::RngExt;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| u32::from(i == 0 || rng.random_range(0..7u32) == 0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_matches_oracle(
        data in prop::collection::vec(any::<u32>(), 0..400),
        vl in vlen(),
        l in lmul(),
        op in scan_op(),
        exclusive in any::<bool>(),
    ) {
        let mut e = env(vl, l);
        let v = e.from_u32(&data).unwrap();
        let kind = if exclusive { ScanKind::Exclusive } else { ScanKind::Inclusive };
        p::scan(&mut e, op, &v, kind).unwrap();
        let want = if exclusive {
            native::u32v::scan_exclusive(op, &data)
        } else {
            native::u32v::scan_inclusive(op, &data)
        };
        prop_assert_eq!(e.to_u32(&v), want);
    }

    #[test]
    fn seg_scan_matches_oracle(
        data in prop::collection::vec(any::<u32>(), 1..400),
        vl in vlen(),
        l in lmul(),
        op in scan_op(),
        seed in any::<u64>(),
    ) {
        let flags = head_flags(data.len(), seed);
        let mut e = env(vl, l);
        let v = e.from_u32(&data).unwrap();
        let f = e.from_u32(&flags).unwrap();
        p::seg_scan(&mut e, op, &v, &f).unwrap();
        prop_assert_eq!(e.to_u32(&v), native::u32v::seg_scan_inclusive(op, &data, &flags));
    }

    #[test]
    fn elementwise_and_reduce_match_oracle(
        data in prop::collection::vec(any::<u32>(), 0..300),
        x in any::<u32>(),
        vl in vlen(),
        op in scan_op(),
    ) {
        let mut e = env(vl, Lmul::M2);
        let v = e.from_u32(&data).unwrap();
        p::elem_vx(&mut e, op.valu(), &v, x as u64).unwrap();
        let want: Vec<u32> = data
            .iter()
            .map(|&a| op.apply(Sew::E32, a as u64, x as u64) as u32)
            .collect();
        prop_assert_eq!(e.to_u32(&v), want);

        let w = e.from_u32(&data).unwrap();
        let (r, _) = p::reduce(&mut e, op, &w).unwrap();
        let elems: Vec<u64> = data.iter().map(|&a| a as u64).collect();
        prop_assert_eq!(r, native::reduce(op, Sew::E32, &elems));
    }

    #[test]
    fn enumerate_select_permute_match_oracle(
        bits in prop::collection::vec(0u32..2, 1..300),
        vl in vlen(),
        l in lmul(),
    ) {
        let n = bits.len();
        let mut e = env(vl, l);
        let f = e.from_u32(&bits).unwrap();
        let d = e.alloc(Sew::E32, n).unwrap();
        let (count, _) = p::enumerate(&mut e, &f, true, &d).unwrap();
        let (want, want_count) = native::enumerate(&bits, true);
        let got: Vec<u64> = e.to_u32(&d).iter().map(|&x| x as u64).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(count, want_count);

        // select: flags pick between two ramps.
        let a: Vec<u32> = (0..n as u32).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i + 1000).collect();
        let va = e.from_u32(&a).unwrap();
        let vb = e.from_u32(&b).unwrap();
        let out = e.alloc(Sew::E32, n).unwrap();
        p::select(&mut e, &f, &va, &vb, &out).unwrap();
        let au: Vec<u64> = a.iter().map(|&x| x as u64).collect();
        let bu: Vec<u64> = b.iter().map(|&x| x as u64).collect();
        let want: Vec<u32> =
            native::select(&bits, &au, &bu).into_iter().map(|x| x as u32).collect();
        prop_assert_eq!(e.to_u32(&out), want);

        // permute by a random-but-valid permutation: reverse.
        let idx: Vec<u32> = (0..n as u32).rev().collect();
        let vi = e.from_u32(&idx).unwrap();
        let dst = e.alloc(Sew::E32, n).unwrap();
        p::permute(&mut e, &va, &vi, &dst).unwrap();
        let want: Vec<u32> = a.iter().rev().copied().collect();
        prop_assert_eq!(e.to_u32(&dst), want);
    }

    #[test]
    fn split_and_pack_match_oracle(
        pairs in prop::collection::vec((any::<u32>(), 0u32..2), 1..250),
        vl in vlen(),
        l in lmul(),
    ) {
        let data: Vec<u32> = pairs.iter().map(|&(d, _)| d).collect();
        let flags: Vec<u32> = pairs.iter().map(|&(_, f)| f).collect();
        let n = data.len();
        let mut e = env(vl, l);
        let v = e.from_u32(&data).unwrap();
        let f = e.from_u32(&flags).unwrap();
        let dst = e.alloc(Sew::E32, n).unwrap();
        p::split(&mut e, &v, &f, &dst).unwrap();
        let du: Vec<u64> = data.iter().map(|&x| x as u64).collect();
        let want: Vec<u32> = native::split(&du, &flags).into_iter().map(|x| x as u32).collect();
        prop_assert_eq!(e.to_u32(&dst), want);

        let packed = e.alloc(Sew::E32, n).unwrap();
        let (kept, _) = p::pack(&mut e, &v, &f, &packed).unwrap();
        let want: Vec<u32> = native::pack(&du, &flags).into_iter().map(|x| x as u32).collect();
        prop_assert_eq!(kept as usize, want.len());
        prop_assert_eq!(&e.to_u32(&packed)[..kept as usize], &want[..]);
    }

    #[test]
    fn data_moves_match_oracle(
        data in prop::collection::vec(any::<u32>(), 1..250),
        vl in vlen(),
        l in lmul(),
    ) {
        let n = data.len();
        let mut e = env(vl, l);
        let v = e.from_u32(&data).unwrap();
        let c = e.alloc(Sew::E32, n).unwrap();
        p::copy(&mut e, &v, &c).unwrap();
        prop_assert_eq!(e.to_u32(&c), data.clone());
        let r = e.alloc(Sew::E32, n).unwrap();
        p::reverse(&mut e, &v, &r).unwrap();
        let mut want = data.clone();
        want.reverse();
        prop_assert_eq!(e.to_u32(&r), want);
        let i = e.alloc(Sew::E32, n).unwrap();
        p::iota(&mut e, &i).unwrap();
        prop_assert_eq!(e.to_u32(&i), (0..n as u32).collect::<Vec<_>>());
        // gather(v, iota) == copy.
        let g = e.alloc(Sew::E32, n).unwrap();
        p::gather(&mut e, &v, &i, &g).unwrap();
        prop_assert_eq!(e.to_u32(&g), data);
    }
}
