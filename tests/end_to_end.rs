//! End-to-end runs of the full applications on one shared environment —
//! the "does the whole stack hold together" test.

use proptest::prelude::*;
use rand::prelude::*;
use scan_vector_rvv::algos::{
    line_of_sight, line_of_sight_reference, qsort_baseline, random_csr, seg_quicksort,
    split_radix_sort, spmv,
};
use scan_vector_rvv::core::ScanEnv;

#[test]
fn three_sorters_agree() {
    let mut rng = StdRng::seed_from_u64(4242);
    let data: Vec<u32> = (0..800).map(|_| rng.random_range(0..100_000)).collect();
    let mut want = data.clone();
    want.sort_unstable();

    let mut env = ScanEnv::paper_default();
    let a = env.from_u32(&data).unwrap();
    let radix_cost = split_radix_sort(&mut env, &a, 32).unwrap();
    assert_eq!(env.to_u32(&a), want);

    let b = env.from_u32(&data).unwrap();
    let qsort_cost = qsort_baseline(&mut env, &b).unwrap();
    assert_eq!(env.to_u32(&b), want);

    let c = env.from_u32(&data).unwrap();
    let segq_cost = seg_quicksort(&mut env, &c).unwrap();
    assert_eq!(env.to_u32(&c), want);

    assert!(radix_cost > 0 && qsort_cost > 0 && segq_cost > 0);
    // The environment's cumulative counter saw everything.
    assert!(env.retired() >= radix_cost + qsort_cost + segq_cost);
}

#[test]
fn spmv_chains_after_sorting_in_same_env() {
    // Region allocation must leave the environment reusable across
    // completely different workloads.
    let mut rng = StdRng::seed_from_u64(9);
    let mut env = ScanEnv::paper_default();

    let data: Vec<u32> = (0..300).map(|_| rng.random()).collect();
    let v = env.from_u32(&data).unwrap();
    split_radix_sort(&mut env, &v, 32).unwrap();

    let a = random_csr(&mut rng, 40, 128, 5);
    let x: Vec<u32> = (0..128).map(|_| rng.random_range(0..50)).collect();
    let (y, _) = spmv(&mut env, &a, &x).unwrap();
    assert_eq!(y, a.spmv_reference(&x));

    let terrain: Vec<u32> = (0..200).map(|_| rng.random_range(0..1500)).collect();
    let (vis, _) = line_of_sight(&mut env, &terrain, 700).unwrap();
    assert_eq!(vis, line_of_sight_reference(&terrain, 700));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn radix_sort_equals_std_sort(data in prop::collection::vec(any::<u32>(), 0..400)) {
        let mut env = ScanEnv::paper_default();
        let v = env.from_u32(&data).unwrap();
        split_radix_sort(&mut env, &v, 32).unwrap();
        let mut want = data;
        want.sort_unstable();
        prop_assert_eq!(env.to_u32(&v), want);
    }

    #[test]
    fn seg_quicksort_equals_std_sort(data in prop::collection::vec(0u32..5000, 0..300)) {
        let mut env = ScanEnv::paper_default();
        let v = env.from_u32(&data).unwrap();
        seg_quicksort(&mut env, &v).unwrap();
        let mut want = data;
        want.sort_unstable();
        prop_assert_eq!(env.to_u32(&v), want);
    }

    #[test]
    fn spmv_matches_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_csr(&mut rng, 30, 64, 4);
        let x: Vec<u32> = (0..64).map(|_| rng.random_range(0..1000)).collect();
        let mut env = ScanEnv::paper_default();
        let (y, _) = spmv(&mut env, &a, &x).unwrap();
        prop_assert_eq!(y, a.spmv_reference(&x));
    }
}
