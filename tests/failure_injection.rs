//! Failure injection: every trap path in the stack is reachable and
//! reported as a typed error — no silent corruption, no panics.

use scan_vector_rvv::asm::ProgramBuilder;
use scan_vector_rvv::isa::{Instr, Lmul, Sew, VAluOp, VReg, VType, XReg};
use scan_vector_rvv::sim::{Machine, MachineConfig, Program, SimError};

fn machine() -> Machine {
    Machine::new(MachineConfig {
        vlen: 128,
        mem_bytes: 4096,
    })
}

#[test]
fn vector_op_before_vsetvli_is_vill() {
    let mut m = machine();
    let p = Program::new(
        "no-config",
        vec![
            Instr::VOpVV {
                op: VAluOp::Add,
                vd: VReg::new(4),
                vs2: VReg::new(5),
                vs1: VReg::new(6),
                vm: true,
            },
            Instr::Ecall,
        ],
    );
    assert!(matches!(m.run_default(&p), Err(SimError::Vill)));
}

#[test]
fn misaligned_group_under_lmul() {
    let mut m = machine();
    let mut b = ProgramBuilder::new("misaligned");
    b.li(XReg::new(10), 8);
    b.vsetvli(XReg::ZERO, XReg::new(10), VType::new(Sew::E32, Lmul::M4));
    b.vop_vv(VAluOp::Add, VReg::new(6), VReg::new(8), VReg::new(12), true); // v6 % 4 != 0
    b.halt();
    let p = b.finish().unwrap();
    assert!(matches!(
        m.run_default(&p),
        Err(SimError::MisalignedGroup { .. })
    ));
}

#[test]
fn vector_load_out_of_bounds() {
    let mut m = machine();
    let mut b = ProgramBuilder::new("oob");
    b.li(XReg::new(10), 4);
    b.vsetvli(XReg::ZERO, XReg::new(10), VType::new(Sew::E32, Lmul::M1));
    b.li(XReg::new(11), 4090); // 4 x e32 from 4090 crosses the 4096 end
    b.vle(Sew::E32, VReg::new(8), XReg::new(11));
    b.halt();
    let p = b.finish().unwrap();
    assert!(matches!(
        m.run_default(&p),
        Err(SimError::MemOutOfBounds { .. })
    ));
}

#[test]
fn indexed_store_with_wild_index_traps() {
    let mut m = machine();
    let mut b = ProgramBuilder::new("wild-scatter");
    b.li(XReg::new(10), 4);
    b.vsetvli(XReg::ZERO, XReg::new(10), VType::new(Sew::E32, Lmul::M1));
    // index vector = huge byte offsets via vid << 30.
    b.vid(VReg::new(9));
    b.vop_vi(VAluOp::Sll, VReg::new(9), VReg::new(9), 30, true);
    b.li(XReg::new(11), 0);
    b.vsuxei(Sew::E32, VReg::new(8), XReg::new(11), VReg::new(9));
    b.halt();
    let p = b.finish().unwrap();
    assert!(matches!(
        m.run_default(&p),
        Err(SimError::MemOutOfBounds { .. })
    ));
}

#[test]
fn slideup_overlap_constraint() {
    let mut m = machine();
    let mut b = ProgramBuilder::new("overlap");
    b.li(XReg::new(10), 4);
    b.vsetvli(XReg::ZERO, XReg::new(10), VType::new(Sew::E32, Lmul::M1));
    b.li(XReg::new(5), 1);
    b.vslideup_vx(VReg::new(8), VReg::new(8), XReg::new(5), true);
    b.halt();
    let p = b.finish().unwrap();
    assert!(matches!(
        m.run_default(&p),
        Err(SimError::OverlapConstraint { .. })
    ));
}

#[test]
fn guard_regions_catch_overruns() {
    let mut m = machine();
    // Arm a guard right after a 16-byte buffer at 0x100.
    m.mem.add_guard(0x110..0x120);
    let mut b = ProgramBuilder::new("overrun");
    b.li(XReg::new(10), 8); // 8 elements = 32 bytes > 16-byte buffer
    b.vsetvli(XReg::ZERO, XReg::new(10), VType::new(Sew::E32, Lmul::M2));
    b.li(XReg::new(11), 0x100);
    b.vse(Sew::E32, VReg::new(8), XReg::new(11));
    b.halt();
    let p = b.finish().unwrap();
    assert!(matches!(m.run_default(&p), Err(SimError::GuardHit { .. })));
}

#[test]
fn fuel_exhaustion_reports_budget() {
    let mut m = machine();
    let mut b = ProgramBuilder::new("spin");
    let l = b.label();
    b.bind(l);
    b.jump(l);
    b.halt();
    let p = b.finish().unwrap();
    assert!(matches!(
        m.run(&p, 500),
        Err(SimError::FuelExhausted { fuel: 500 })
    ));
    // The machine survives and can run something else afterwards.
    let ok = Program::new("ok", vec![Instr::Ecall]);
    assert!(m.run_default(&ok).is_ok());
}

#[test]
fn device_oom_is_typed() {
    use scan_vector_rvv::core::ScanError;
    use scan_vector_rvv::core::{EnvConfig, ScanEnv};
    let mut e = ScanEnv::new(EnvConfig {
        vlen: 128,
        lmul: Lmul::M1,
        spill_profile: scan_vector_rvv::asm::SpillProfile::llvm14(),
        mem_bytes: 2 << 20,
    });
    let r = e.alloc(Sew::E32, 10 << 20);
    assert!(matches!(r, Err(ScanError::OutOfDeviceMemory { .. })));
}

#[test]
fn shape_errors_are_typed() {
    use scan_vector_rvv::core::primitives as p;
    use scan_vector_rvv::core::ScanEnv;
    use scan_vector_rvv::core::{ScanError, ScanOp};
    let mut e = ScanEnv::paper_default();
    let a = e.from_u32(&[1, 2, 3]).unwrap();
    let b = e.from_u32(&[1, 2]).unwrap();
    assert!(matches!(
        p::seg_scan(&mut e, ScanOp::Plus, &a, &b),
        Err(ScanError::LengthMismatch { .. })
    ));
    let c = e.from_u64(&[1, 2, 3]).unwrap();
    assert!(matches!(
        p::elem_vv(&mut e, VAluOp::Add, &a, &c, &a),
        Err(ScanError::SewMismatch { .. })
    ));
}

#[test]
fn bad_segment_descriptors_rejected() {
    use scan_vector_rvv::core::Segments;
    assert!(Segments::from_head_flags(vec![0, 1]).is_err());
    assert!(Segments::from_lengths(&[0]).is_err());
    assert!(Segments::from_head_pointers(&[0, 0], 3).is_err());
}
