//! Element-width sweep: the primitives are width-generic; every SEW must
//! agree with the oracle (which models per-width truncation exactly).

use proptest::prelude::*;
use scan_vector_rvv::core::typed::DeviceVec;
use scan_vector_rvv::core::{native, primitives as p, ScanKind, ScanOp};
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::isa::{Lmul, Sew};

fn env(vlen: u32) -> ScanEnv {
    ScanEnv::new(EnvConfig {
        vlen,
        lmul: Lmul::M2,
        spill_profile: scan_vector_rvv::asm::SpillProfile::llvm14(),
        mem_bytes: 16 << 20,
    })
}

fn sew() -> impl Strategy<Value = Sew> {
    prop_oneof![
        Just(Sew::E8),
        Just(Sew::E16),
        Just(Sew::E32),
        Just(Sew::E64)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scans_agree_at_every_width(
        data in prop::collection::vec(any::<u64>(), 1..200),
        s in sew(),
        vlen in prop_oneof![Just(128u32), Just(512)],
        exclusive in any::<bool>(),
    ) {
        let staged: Vec<u64> = data.iter().map(|&x| s.truncate(x)).collect();
        let mut e = env(vlen);
        let v = e.from_elems(s, &staged).unwrap();
        let kind = if exclusive { ScanKind::Exclusive } else { ScanKind::Inclusive };
        p::scan(&mut e, ScanOp::Plus, &v, kind).unwrap();
        let want = if exclusive {
            native::scan_exclusive(ScanOp::Plus, s, &staged)
        } else {
            native::scan_inclusive(ScanOp::Plus, s, &staged)
        };
        prop_assert_eq!(e.to_elems(&v), want);
    }

    #[test]
    fn seg_scans_agree_at_every_width(
        data in prop::collection::vec(any::<u64>(), 1..200),
        s in sew(),
        head_period in 2usize..9,
    ) {
        let staged: Vec<u64> = data.iter().map(|&x| s.truncate(x)).collect();
        let flags: Vec<u32> =
            (0..staged.len()).map(|i| u32::from(i % head_period == 0)).collect();
        let flag_elems: Vec<u64> = flags.iter().map(|&f| f as u64).collect();
        let mut e = env(256);
        let v = e.from_elems(s, &staged).unwrap();
        let f = e.from_elems(s, &flag_elems).unwrap();
        p::seg_scan(&mut e, ScanOp::Plus, &v, &f).unwrap();
        prop_assert_eq!(
            e.to_elems(&v),
            native::seg_scan_inclusive(ScanOp::Plus, s, &staged, &flags)
        );
    }

    #[test]
    fn elementwise_and_reduce_at_every_width(
        data in prop::collection::vec(any::<u64>(), 1..200),
        s in sew(),
        op in prop_oneof![
            Just(ScanOp::Plus), Just(ScanOp::Max), Just(ScanOp::Min),
            Just(ScanOp::And), Just(ScanOp::Or), Just(ScanOp::Xor)
        ],
        x in any::<u64>(),
    ) {
        let staged: Vec<u64> = data.iter().map(|&v| s.truncate(v)).collect();
        let mut e = env(256);
        let v = e.from_elems(s, &staged).unwrap();
        p::elem_vx(&mut e, op.valu(), &v, x).unwrap();
        let xt = s.truncate(x);
        let want: Vec<u64> = staged.iter().map(|&a| op.apply(s, a, xt)).collect();
        prop_assert_eq!(e.to_elems(&v), want.clone());
        let (r, _) = p::reduce(&mut e, op, &v).unwrap();
        prop_assert_eq!(r, native::reduce(op, s, &want));
    }
}

#[test]
fn typed_wrappers_match_untyped_across_widths() {
    let mut e = env(512);
    // The same logical computation at each width, via the typed API.
    let d8: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
    let v8 = DeviceVec::upload(&mut e, &d8).unwrap();
    p::scan(&mut e, ScanOp::Plus, v8.raw(), ScanKind::Inclusive).unwrap();
    let mut acc = 0u8;
    let want8: Vec<u8> = d8
        .iter()
        .map(|&x| {
            acc = acc.wrapping_add(x);
            acc
        })
        .collect();
    assert_eq!(v8.download(&e), want8);

    let d64: Vec<u64> = (0..100).map(|i| i * 0x0101_0101_0101).collect();
    let v64 = DeviceVec::upload(&mut e, &d64).unwrap();
    p::scan(&mut e, ScanOp::Plus, v64.raw(), ScanKind::Inclusive).unwrap();
    let mut acc = 0u64;
    let want64: Vec<u64> = d64
        .iter()
        .map(|&x| {
            acc = acc.wrapping_add(x);
            acc
        })
        .collect();
    assert_eq!(v64.download(&e), want64);
}
