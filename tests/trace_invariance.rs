//! The tracing subsystem must be an observer, never a participant:
//! attaching a sink cannot change architectural results or instruction
//! counts, and the spill detector must reproduce the paper's Table 5
//! story (segmented scan spills at LMUL=8, not at LMUL=1).

use proptest::prelude::*;
use scan_vector_rvv::asm::SpillProfile;
use scan_vector_rvv::core::primitives as p;
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::isa::Lmul;
use scan_vector_rvv::trace::TraceProfiler;

fn env(lmul: Lmul) -> ScanEnv {
    ScanEnv::new(EnvConfig {
        vlen: 1024,
        lmul,
        spill_profile: SpillProfile::llvm14(),
        mem_bytes: 16 << 20,
    })
}

fn profiled_seg_scan(lmul: Lmul, n: usize, seg_len: usize) -> (TraceProfiler, u64) {
    let mut e = env(lmul);
    e.attach_tracer(Box::new(TraceProfiler::new(e.stack_region())));
    let data: Vec<u32> = (0..n as u32).map(|i| i % 1000).collect();
    let flags: Vec<u32> = (0..n).map(|i| u32::from(i % seg_len == 0)).collect();
    let v = e.from_u32(&data).unwrap();
    let f = e.from_u32(&flags).unwrap();
    let retired = p::seg_plus_scan(&mut e, &v, &f).unwrap();
    let profiler = TraceProfiler::from_sink(e.detach_tracer().unwrap()).unwrap();
    (profiler, retired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tracing is invisible: identical values, identical counters, and the
    /// sink observes exactly the instructions the machine retires.
    #[test]
    fn attaching_a_sink_changes_nothing(
        data in prop::collection::vec(any::<u32>(), 1..400),
        seg_len in 1usize..50,
        lmul_idx in 0usize..4,
    ) {
        let lmul = [Lmul::M1, Lmul::M2, Lmul::M4, Lmul::M8][lmul_idx];
        let flags: Vec<u32> =
            (0..data.len()).map(|i| u32::from(i % seg_len == 0)).collect();

        let mut plain = env(lmul);
        let v0 = plain.from_u32(&data).unwrap();
        let f0 = plain.from_u32(&flags).unwrap();
        let retired_plain = p::seg_plus_scan(&mut plain, &v0, &f0).unwrap();
        let out_plain = plain.to_u32(&v0);

        let mut traced = env(lmul);
        traced.attach_tracer(Box::new(TraceProfiler::new(traced.stack_region())));
        let v1 = traced.from_u32(&data).unwrap();
        let f1 = traced.from_u32(&flags).unwrap();
        let retired_traced = p::seg_plus_scan(&mut traced, &v1, &f1).unwrap();
        let out_traced = traced.to_u32(&v1);
        let profiler =
            TraceProfiler::from_sink(traced.detach_tracer().unwrap()).unwrap();

        prop_assert_eq!(out_plain, out_traced);
        prop_assert_eq!(retired_plain, retired_traced);
        prop_assert_eq!(
            plain.machine().counters.clone(),
            traced.machine().counters.clone()
        );
        prop_assert_eq!(profiler.total_retired(), traced.machine().counters.total());
        // Phase attribution is a partition: every retired instruction lands
        // in exactly one innermost phase or in the unattributed remainder.
        let attributed: u64 = profiler.phases().iter().map(|ph| ph.retired).sum();
        prop_assert_eq!(attributed + profiler.unattributed(), profiler.total_retired());
    }
}

/// The acceptance criterion from the paper's Table 5 anomaly: for small
/// inputs the segmented scan spills strictly more at LMUL=8 than LMUL=1
/// (where it must not spill at all).
#[test]
fn seg_scan_spills_more_at_m8_than_m1() {
    let (p1, _) = profiled_seg_scan(Lmul::M1, 4096, 64);
    let (p8, _) = profiled_seg_scan(Lmul::M8, 4096, 64);
    assert_eq!(
        p1.spill().vector_ops(),
        0,
        "LMUL=1 seg_scan must not spill: {:?}",
        p1.spill()
    );
    assert!(
        p8.spill().vector_ops() > p1.spill().vector_ops(),
        "LMUL=8 must spill more than LMUL=1: m8={:?} m1={:?}",
        p8.spill(),
        p1.spill()
    );
    // The spill traffic is attributed to the seg_scan phase, not lost.
    let ph = p8.phase("seg_scan").expect("seg_scan phase recorded");
    assert_eq!(ph.spill.vector_ops(), p8.spill().vector_ops());
}

/// Control: the unsegmented scan has only three live values, so it fits
/// the register file at every LMUL and the detector stays silent.
#[test]
fn unsegmented_scan_never_spills() {
    for lmul in [Lmul::M1, Lmul::M8] {
        let mut e = env(lmul);
        e.attach_tracer(Box::new(TraceProfiler::new(e.stack_region())));
        let data: Vec<u32> = (0..4096u32).collect();
        let v = e.from_u32(&data).unwrap();
        p::plus_scan(&mut e, &v).unwrap();
        let prof = TraceProfiler::from_sink(e.detach_tracer().unwrap()).unwrap();
        assert_eq!(
            prof.spill().total_ops(),
            0,
            "plus_scan spilled at {lmul:?}: {:?}",
            prof.spill()
        );
    }
}
