//! Results must be identical across every machine configuration: VLEN,
//! LMUL, and spill profile change *instruction counts*, never values.
//! This pins down the vector-length-agnostic programming claim (paper
//! §3.1) and the correctness of spill code.

use scan_vector_rvv::algos;
use scan_vector_rvv::asm::SpillProfile;
use scan_vector_rvv::core::primitives as p;
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::core::{ScanKind, ScanOp};
use scan_vector_rvv::isa::Lmul;

fn all_configs() -> Vec<EnvConfig> {
    let mut v = Vec::new();
    for vlen in [128u32, 256, 512, 1024] {
        for lmul in Lmul::ALL {
            for profile in [SpillProfile::llvm14(), SpillProfile::ideal()] {
                v.push(EnvConfig {
                    vlen,
                    lmul,
                    spill_profile: profile,
                    mem_bytes: 32 << 20,
                });
            }
        }
    }
    v
}

fn data(n: usize) -> (Vec<u32>, Vec<u32>) {
    let xs: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(0x9e3779b9).rotate_left(7))
        .collect();
    let flags: Vec<u32> = (0..n).map(|i| u32::from(i == 0 || i % 13 == 5)).collect();
    (xs, flags)
}

#[test]
fn seg_scan_identical_across_all_configs() {
    let (xs, flags) = data(531);
    let mut reference: Option<Vec<u32>> = None;
    for cfg in all_configs() {
        let mut e = ScanEnv::new(cfg);
        let v = e.from_u32(&xs).unwrap();
        let f = e.from_u32(&flags).unwrap();
        p::seg_scan(&mut e, ScanOp::Plus, &v, &f).unwrap();
        let got = e.to_u32(&v);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "config {cfg:?} changed the result"),
        }
    }
}

#[test]
fn scan_identical_across_all_configs() {
    let (xs, _) = data(777);
    let mut reference: Option<Vec<u32>> = None;
    for cfg in all_configs() {
        let mut e = ScanEnv::new(cfg);
        let v = e.from_u32(&xs).unwrap();
        p::scan(&mut e, ScanOp::Max, &v, ScanKind::Exclusive).unwrap();
        let got = e.to_u32(&v);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "config {cfg:?} changed the result"),
        }
    }
}

#[test]
fn radix_sort_identical_across_configs() {
    let (xs, _) = data(257);
    let mut want = xs.clone();
    want.sort_unstable();
    // A representative spread (the full cross product is covered by the
    // primitive-level tests; the sort launches ~200 kernels per config).
    for cfg in [
        EnvConfig {
            vlen: 128,
            lmul: Lmul::M1,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 32 << 20,
        },
        EnvConfig {
            vlen: 1024,
            lmul: Lmul::M8,
            spill_profile: SpillProfile::llvm14(),
            mem_bytes: 32 << 20,
        },
        EnvConfig {
            vlen: 512,
            lmul: Lmul::M4,
            spill_profile: SpillProfile::ideal(),
            mem_bytes: 32 << 20,
        },
    ] {
        let mut e = ScanEnv::new(cfg);
        let v = e.from_u32(&xs).unwrap();
        algos::split_radix_sort(&mut e, &v, 32).unwrap();
        assert_eq!(e.to_u32(&v), want, "config {cfg:?} mis-sorted");
    }
}

#[test]
fn spill_profile_changes_count_not_result() {
    // At LMUL=8 the segmented scan spills; the two profiles must agree on
    // values and disagree on counts (the calibrated profile adds the
    // conservative frame).
    let (xs, flags) = data(400);
    let mut counts = Vec::new();
    let mut results = Vec::new();
    for profile in [SpillProfile::llvm14(), SpillProfile::ideal()] {
        let mut e = ScanEnv::new(EnvConfig {
            vlen: 1024,
            lmul: Lmul::M8,
            spill_profile: profile,
            mem_bytes: 32 << 20,
        });
        let v = e.from_u32(&xs).unwrap();
        let f = e.from_u32(&flags).unwrap();
        counts.push(p::seg_scan(&mut e, ScanOp::Plus, &v, &f).unwrap());
        results.push(e.to_u32(&v));
    }
    assert_eq!(results[0], results[1]);
    assert!(
        counts[0] > counts[1],
        "calibrated profile must cost more than ideal: {counts:?}"
    );
}

#[test]
fn vl_boundary_sizes() {
    // Sizes straddling strip boundaries at every VLEN: n = k*vlmax ± 1.
    for vlen in [128u32, 1024] {
        let vlmax = (vlen / 32) as usize;
        for n in [
            vlmax - 1,
            vlmax,
            vlmax + 1,
            3 * vlmax - 1,
            3 * vlmax,
            3 * vlmax + 1,
        ] {
            let (xs, flags) = data(n);
            let mut e = ScanEnv::new(EnvConfig {
                vlen,
                lmul: Lmul::M1,
                spill_profile: SpillProfile::llvm14(),
                mem_bytes: 32 << 20,
            });
            let v = e.from_u32(&xs).unwrap();
            let f = e.from_u32(&flags).unwrap();
            p::seg_scan(&mut e, ScanOp::Plus, &v, &f).unwrap();
            let got = e.to_u32(&v);
            let xu: Vec<u64> = xs.iter().map(|&x| x as u64).collect();
            let want = scan_vector_rvv::core::native::seg_scan_inclusive(
                ScanOp::Plus,
                scan_vector_rvv::isa::Sew::E32,
                &xu,
                &flags,
            );
            let want: Vec<u32> = want.into_iter().map(|x| x as u32).collect();
            assert_eq!(got, want, "vlen={vlen} n={n}");
        }
    }
}
