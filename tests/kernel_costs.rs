//! Golden dynamic-instruction costs for the core kernels.
//!
//! The experiment tables (EXPERIMENTS.md) are only reproducible if kernel
//! codegen stays put, so these tests pin the *exact* cost formulas at the
//! paper's headline configuration. A failure here means codegen changed —
//! re-derive the formula and regenerate EXPERIMENTS.md, deliberately.

use scan_vector_rvv::core::primitives::{self as p, baseline};
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::core::{ScanKind, ScanOp};
use scan_vector_rvv::isa::Lmul;

fn env1024() -> ScanEnv {
    ScanEnv::new(EnvConfig::paper_default()) // VLEN=1024, LMUL=1: 32-elem strips
}

/// Number of strip-mining iterations for `n` elements of 32-bit data.
fn strips(n: usize, vlmax: usize) -> u64 {
    n.div_ceil(vlmax) as u64
}

/// Σ over strips of the in-register ladder rounds ⌈lg vl⌉ (vl = 32 for all
/// full strips, the remainder for the last).
fn ladder_rounds(n: usize, vlmax: usize) -> u64 {
    let mut total = 0u64;
    let mut left = n;
    while left > 0 {
        let vl = left.min(vlmax);
        let mut rounds = 0u64;
        let mut off = 1;
        while off < vl {
            rounds += 1;
            off <<= 1;
        }
        total += rounds;
        left -= vl;
    }
    total
}

#[test]
fn p_add_cost_formula() {
    // Per strip: vsetvli + vle + vadd.vx + vse + slli + add + sub + bne = 8;
    // plus the n=0 guard branch and the halting ecall.
    for n in [1usize, 31, 32, 33, 100, 1000] {
        let mut e = env1024();
        let v = e.from_u32(&vec![1; n]).unwrap();
        let got = p::p_add(&mut e, &v, 1).unwrap();
        assert_eq!(got, 8 * strips(n, 32) + 2, "n={n}");
    }
}

#[test]
fn scalar_baselines_cost_formulas() {
    // p_add baseline: 6 per element + guard + ecall.
    // plus_scan baseline: 6 per element + li + guard + ecall.
    // seg scan baseline: 9 per element + 1 per head + li + guard + ecall.
    let n = 997;
    let mut e = env1024();
    let v = e.from_u32(&vec![1; n]).unwrap();
    assert_eq!(baseline::p_add(&mut e, &v, 1).unwrap(), 6 * n as u64 + 2);
    let w = e.from_u32(&vec![1; n]).unwrap();
    assert_eq!(baseline::plus_scan(&mut e, &w).unwrap(), 6 * n as u64 + 3);
    let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 10 == 0)).collect();
    let heads = flags.iter().filter(|&&f| f == 1).count() as u64;
    let x = e.from_u32(&vec![1; n]).unwrap();
    let f = e.from_u32(&flags).unwrap();
    assert_eq!(
        baseline::seg_plus_scan(&mut e, &x, &f).unwrap(),
        9 * n as u64 + heads + 3
    );
}

#[test]
fn plus_scan_cost_formula() {
    // Preamble: li carry + guard + vsetvlmax + li ident + vmv.v.x = 5.
    // Per strip: vsetvli + vle + [li off + bgeu] + rounds×(vmv+slideup+add
    // + slli + bltu) + carry-add + (vse + addi + vslidedown + vmv.x.s)
    // + advance(slli+add+sub+bne) = 13 + 5·rounds.
    // Epilogue: ecall.
    for n in [1usize, 32, 100, 1000] {
        let mut e = env1024();
        let v = e.from_u32(&vec![1; n]).unwrap();
        let got = p::scan(&mut e, ScanOp::Plus, &v, ScanKind::Inclusive).unwrap();
        let want = 5 + 13 * strips(n, 32) + 5 * ladder_rounds(n, 32) + 1;
        assert_eq!(got, want, "n={n}");
    }
}

#[test]
fn seg_plus_scan_cost_formula() {
    // Preamble: li carry + guard + vsetvlmax + 2×(li) + 2×(vmv.v.x) = 7.
    // Per strip: vsetvli + vle×2 + vmsne + vmsbf + vmv.s.x + [li+bgeu]
    //   + rounds×(vmsne + vmv + slideup + vadd + vmv + slideup + vor
    //             + slli + bltu)
    //   + vmand + carry-add + vse + addi + vslidedown + vmv.x.s
    //   + advance(4) = 19 + 9·rounds.
    // Epilogue: ecall.
    for n in [1usize, 32, 100, 1000] {
        let mut e = env1024();
        let v = e.from_u32(&vec![1; n]).unwrap();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 7 == 0)).collect();
        let f = e.from_u32(&flags).unwrap();
        let got = p::seg_plus_scan(&mut e, &v, &f).unwrap();
        let want = 7 + 19 * strips(n, 32) + 9 * ladder_rounds(n, 32) + 1;
        assert_eq!(got, want, "n={n}");
    }
}

#[test]
fn lmul8_seg_scan_fixed_overhead_band() {
    // The calibrated conservative frame (6 slots × 1024 B, zeroed at
    // 3 instructions per 8 bytes) puts the per-call fixed cost in the
    // 2.2k–2.6k band the paper's Table 5 exhibits at N=100 (2090).
    let mut e = ScanEnv::new(EnvConfig::with_lmul(Lmul::M8));
    let v = e.from_u32(&vec![1; 100]).unwrap();
    let flags: Vec<u32> = (0..100).map(|i| u32::from(i % 50 == 0)).collect();
    let f = e.from_u32(&flags).unwrap();
    let got = p::seg_plus_scan(&mut e, &v, &f).unwrap();
    assert!(
        (2_200..=2_600).contains(&got),
        "LMUL=8 N=100 cost drifted out of the calibrated band: {got}"
    );
}

#[test]
fn costs_are_deterministic() {
    // The same launch on fresh environments retires the identical count —
    // the whole dynamic-instruction methodology rests on this.
    let n = 777;
    let data: Vec<u32> = (0..n as u32).map(|i| i * 31).collect();
    let mut counts = Vec::new();
    for _ in 0..3 {
        let mut e = env1024();
        let v = e.from_u32(&data).unwrap();
        counts.push(p::scan(&mut e, ScanOp::Plus, &v, ScanKind::Inclusive).unwrap());
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
