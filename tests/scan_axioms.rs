//! Invariant tests: the algebraic laws every scan implementation must
//! satisfy, checked on the *simulated* results (not just the oracle).

use proptest::prelude::*;
use scan_vector_rvv::core::primitives as p;
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::core::{ScanKind, ScanOp, Segments};
use scan_vector_rvv::isa::{Lmul, Sew};

fn env() -> ScanEnv {
    ScanEnv::new(EnvConfig {
        vlen: 256,
        lmul: Lmul::M1,
        spill_profile: scan_vector_rvv::asm::SpillProfile::llvm14(),
        mem_bytes: 16 << 20,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// exclusive(x)[i+1] == inclusive(x)[i]; exclusive(x)[0] == identity.
    #[test]
    fn exclusive_is_shifted_inclusive(data in prop::collection::vec(any::<u32>(), 1..300)) {
        for op in [ScanOp::Plus, ScanOp::Max, ScanOp::Xor] {
            let mut e = env();
            let vi = e.from_u32(&data).unwrap();
            p::scan(&mut e, op, &vi, ScanKind::Inclusive).unwrap();
            let ve = e.from_u32(&data).unwrap();
            p::scan(&mut e, op, &ve, ScanKind::Exclusive).unwrap();
            let inc = e.to_u32(&vi);
            let exc = e.to_u32(&ve);
            prop_assert_eq!(exc[0] as u64, op.identity(Sew::E32));
            prop_assert_eq!(&exc[1..], &inc[..inc.len() - 1]);
        }
    }

    /// The last element of an inclusive scan equals the reduction.
    #[test]
    fn scan_last_equals_reduce(data in prop::collection::vec(any::<u32>(), 1..300)) {
        for op in [ScanOp::Plus, ScanOp::Min, ScanOp::Or] {
            let mut e = env();
            let v = e.from_u32(&data).unwrap();
            let (red, _) = p::reduce(&mut e, op, &v).unwrap();
            p::scan(&mut e, op, &v, ScanKind::Inclusive).unwrap();
            prop_assert_eq!(*e.to_u32(&v).last().unwrap() as u64, red);
        }
    }

    /// A segmented scan is exactly a per-segment unsegmented scan.
    #[test]
    fn seg_scan_is_per_segment_scan(
        lengths in prop::collection::vec(1u32..20, 1..25),
    ) {
        let segs = Segments::from_lengths(&lengths).unwrap();
        let n = segs.len();
        let data: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        let f = e.from_u32(segs.head_flags()).unwrap();
        p::seg_scan(&mut e, ScanOp::Plus, &v, &f).unwrap();
        let got = e.to_u32(&v);
        // Scan each segment independently on the device too.
        for range in segs.ranges() {
            let mut e2 = env();
            let seg_data = &data[range.clone()];
            let sv = e2.from_u32(seg_data).unwrap();
            p::scan(&mut e2, ScanOp::Plus, &sv, ScanKind::Inclusive).unwrap();
            prop_assert_eq!(&got[range], &e2.to_u32(&sv)[..]);
        }
    }

    /// Segment descriptor conversions are mutually inverse, and all three
    /// forms drive the same segmented scan result.
    #[test]
    fn descriptor_forms_agree(lengths in prop::collection::vec(1u32..15, 1..20)) {
        let segs = Segments::from_lengths(&lengths).unwrap();
        let via_ptrs =
            Segments::from_head_pointers(&segs.to_head_pointers(), segs.len()).unwrap();
        prop_assert_eq!(&segs, &via_ptrs);
        let via_flags = Segments::from_head_flags(segs.head_flags().to_vec()).unwrap();
        prop_assert_eq!(&segs, &via_flags);
        prop_assert_eq!(segs.to_lengths(), lengths);
    }

    /// split = zeros then ones, stable (checked against enumerate-based
    /// positions computed on the host).
    #[test]
    fn split_is_stable_partition(
        pairs in prop::collection::vec((0u32..100, 0u32..2), 1..200),
    ) {
        let data: Vec<u32> = pairs.iter().map(|&(d, _)| d).collect();
        let flags: Vec<u32> = pairs.iter().map(|&(_, f)| f).collect();
        let mut e = env();
        let v = e.from_u32(&data).unwrap();
        let f = e.from_u32(&flags).unwrap();
        let dst = e.alloc(Sew::E32, data.len()).unwrap();
        p::split(&mut e, &v, &f, &dst).unwrap();
        let got = e.to_u32(&dst);
        let mut want: Vec<u32> = data
            .iter()
            .zip(&flags)
            .filter(|(_, &fl)| fl == 0)
            .map(|(&d, _)| d)
            .collect();
        want.extend(data.iter().zip(&flags).filter(|(_, &fl)| fl != 0).map(|(&d, _)| d));
        prop_assert_eq!(got, want);
    }

    /// enumerate(flags,0) and enumerate(flags,1) partition the index space:
    /// for every i, zeros_before + ones_before == i.
    #[test]
    fn enumerate_polarities_are_complementary(bits in prop::collection::vec(0u32..2, 1..200)) {
        let n = bits.len();
        let mut e = env();
        let f = e.from_u32(&bits).unwrap();
        let d0 = e.alloc(Sew::E32, n).unwrap();
        let d1 = e.alloc(Sew::E32, n).unwrap();
        let (c0, _) = p::enumerate(&mut e, &f, false, &d0).unwrap();
        let (c1, _) = p::enumerate(&mut e, &f, true, &d1).unwrap();
        prop_assert_eq!(c0 + c1, n as u64);
        let z = e.to_u32(&d0);
        let o = e.to_u32(&d1);
        for i in 0..n {
            prop_assert_eq!(z[i] + o[i], i as u32);
        }
    }
}
