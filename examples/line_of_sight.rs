//! Line-of-sight over a terrain profile via exclusive max-scan.
//!
//! Run: `cargo run --release --example line_of_sight`

use scan_vector_rvv::algos::{line_of_sight, line_of_sight_reference};
use scan_vector_rvv::core::ScanEnv;

fn main() {
    // A little mountain profile; observer stands at height 12.
    let terrain: Vec<u32> = vec![
        13, 14, 14, 20, 26, 30, 28, 25, 24, 35, 45, 44, 43, 42, 41, 40, 39, 60, 61, 50,
    ];
    let observer = 12;

    let mut env = ScanEnv::paper_default();
    let (vis, cost) = line_of_sight(&mut env, &terrain, observer).unwrap();
    assert_eq!(vis, line_of_sight_reference(&terrain, observer));

    println!("observer height {observer}; terrain / visibility:");
    for (i, (&alt, &v)) in terrain.iter().zip(&vis).enumerate() {
        println!(
            "  d={:>2}  alt={:>3}  {}",
            i + 1,
            alt,
            if v { "visible" } else { "hidden" }
        );
    }
    println!("\n{cost} dynamic instructions (one max-scan + elementwise ops)");
}
