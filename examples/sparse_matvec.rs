//! Sparse matrix–vector product via segmented sum — Blelloch's classic
//! segmented-scan application, built on `gather`, elementwise multiply,
//! `seg_plus_scan`, and `pack`.
//!
//! Run: `cargo run --release --example sparse_matvec`

use rand::prelude::*;
use scan_vector_rvv::algos::{random_csr, spmv};
use scan_vector_rvv::core::ScanEnv;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let rows = 1_000;
    let cols = 2_048u32;
    let a = random_csr(&mut rng, rows, cols, 8);
    let x: Vec<u32> = (0..cols).map(|_| rng.random_range(0..100)).collect();

    let mut env = ScanEnv::paper_default();
    let (y, cost) = spmv(&mut env, &a, &x).unwrap();
    assert_eq!(
        y,
        a.spmv_reference(&x),
        "device result must match the host reference"
    );

    let nnz = a.values.len();
    println!("A: {rows} x {cols}, {nnz} nonzeros; y = A*x on the RVV model");
    println!(
        "  dynamic instructions: {cost} ({:.2} per nonzero)",
        cost as f64 / nnz as f64
    );
    println!("  y[0..8] = {:?}", &y[..8.min(y.len())]);
}
