//! Quickhull on the scan vector model: cross products, farthest-point
//! selection, and candidate compaction all run as data-parallel device
//! primitives; the host recursion touches O(1) scalars per hull edge.
//!
//! Run: `cargo run --release --example convex_hull`

use rand::prelude::*;
use scan_vector_rvv::algos::{convex_hull_reference, quickhull};
use scan_vector_rvv::core::ScanEnv;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);
    // A dense blob plus a few extreme outliers.
    let mut pts: Vec<(u32, u32)> = (0..5_000)
        .map(|_| (rng.random_range(400..600), rng.random_range(400..600)))
        .collect();
    pts.extend([
        (0, 500),
        (1000, 500),
        (500, 0),
        (500, 1000),
        (50, 80),
        (950, 930),
    ]);

    let mut env = ScanEnv::paper_default();
    let (hull, cost) = quickhull(&mut env, &pts).unwrap();
    assert_eq!(
        hull,
        convex_hull_reference(&pts),
        "must match the host reference"
    );

    println!(
        "{} points -> {} hull vertices (CCW):",
        pts.len(),
        hull.len()
    );
    for p in &hull {
        println!("  {p:?}");
    }
    println!(
        "\n{cost} dynamic instructions ({:.1} per point)",
        cost as f64 / pts.len() as f64
    );
}
