//! Split radix sort demo (the paper's §4.4 running example).
//!
//! Sorts random keys with the scan-vector-model sort and the scalar
//! quicksort baseline, printing dynamic instruction counts — and shows the
//! bounded-key optimization (sorting only the bits that can be set).
//!
//! Run: `cargo run --release --example radix_sort`

use rand::prelude::*;
use scan_vector_rvv::algos::{qsort_baseline, split_radix_sort};
use scan_vector_rvv::core::ScanEnv;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);
    let n = 20_000;
    let data: Vec<u32> = (0..n).map(|_| rng.random()).collect();

    let mut env = ScanEnv::paper_default();
    let v = env.from_u32(&data).unwrap();
    let radix_cost = split_radix_sort(&mut env, &v, 32).unwrap();
    let sorted = env.to_u32(&v);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    let w = env.from_u32(&data).unwrap();
    let qsort_cost = qsort_baseline(&mut env, &w).unwrap();
    assert_eq!(env.to_u32(&w), sorted);

    println!("n = {n} random u32 keys");
    println!("  split_radix_sort (32 passes): {radix_cost:>12} instructions");
    println!("  scalar quicksort:             {qsort_cost:>12} instructions");
    println!("  speedup: {:.2}x", qsort_cost as f64 / radix_cost as f64);

    // Bounded keys need fewer passes: 12-bit keys sort in 12 splits.
    let small: Vec<u32> = (0..n).map(|_| rng.random_range(0..1 << 12)).collect();
    let v12 = env.from_u32(&small).unwrap();
    let cost12 = split_radix_sort(&mut env, &v12, 12).unwrap();
    assert!(env.to_u32(&v12).windows(2).all(|w| w[0] <= w[1]));
    println!("\n12-bit keys, 12 passes:         {cost12:>12} instructions");
    println!(
        "  vs 32 passes on the same keys: {:.2}x fewer",
        radix_cost as f64 / cost12 as f64
    );
}
