//! Extending the library: write your own RVV kernel against the assembler
//! EDSL, run it through the environment, and measure it like any built-in
//! primitive.
//!
//! The kernel here is SAXPY-flavoured: `y[i] += a * x[i]` (integer), a
//! two-input streaming loop the core library does not ship.
//!
//! Run: `cargo run --release --example custom_kernel`

use scan_vector_rvv::asm::{KernelBuilder, SpillProfile};
use scan_vector_rvv::core::ScanEnv;
use scan_vector_rvv::isa::{Sew, VAluOp, VType, XReg};
use scan_vector_rvv::sim::Program;

/// Build `y += a*x` over u32: args a0 = n, a1 = y, a2 = x, a3 = a.
fn build_axpy(vlen: u32, lmul: scan_vector_rvv::isa::Lmul) -> Program {
    let sew = Sew::E32;
    let mut k = KernelBuilder::new("axpy", lmul, vlen / 8, SpillProfile::llvm14());
    let vs = k.declare(&["vx", "vy"]);
    let (t_vl, t_adv) = (XReg::new(5), XReg::new(28));
    k.prologue();
    let done = k.b.label();
    k.b.beqz(XReg::arg(0), done);
    let head = k.b.label();
    k.b.bind(head);
    k.b.vsetvli(t_vl, XReg::arg(0), VType::new(sew, lmul));
    let rx = k.vout(vs[0]);
    k.b.vle(sew, rx, XReg::arg(2));
    k.b.vop_vx(VAluOp::Mul, rx, rx, XReg::arg(3), true);
    k.vflush(vs[0], rx);
    let ry = k.vout(vs[1]);
    k.b.vle(sew, ry, XReg::arg(1));
    let rx = k.vin(vs[0]);
    k.b.vop_vv(VAluOp::Add, ry, ry, rx, true);
    k.b.vse(sew, ry, XReg::arg(1));
    k.vflush(vs[1], ry);
    k.b.slli(t_adv, t_vl, 2);
    k.b.add(XReg::arg(1), XReg::arg(1), t_adv);
    k.b.add(XReg::arg(2), XReg::arg(2), t_adv);
    k.b.sub(XReg::arg(0), XReg::arg(0), t_vl);
    k.b.bnez(XReg::arg(0), head);
    k.b.bind(done);
    k.epilogue();
    k.b.halt();
    k.b.finish().expect("axpy assembles")
}

fn main() {
    let n = 10_000usize;
    let xs: Vec<u32> = (0..n as u32).collect();
    let ys: Vec<u32> = (0..n as u32).map(|i| i * 10).collect();
    let a = 3u32;

    let mut env = ScanEnv::paper_default();
    let cfg = env.config();
    let x = env.from_u32(&xs).unwrap();
    let y = env.from_u32(&ys).unwrap();

    // The kernel caches like any built-in one, pre-compiled to a plan.
    let plan = env
        .kernel("custom_axpy", Sew::E32, |c, _| {
            Ok(build_axpy(c.vlen, c.lmul))
        })
        .unwrap();
    println!("disassembly:\n{}", plan.program());
    let (report, _) = env
        .run(&plan, &[n as u64, y.addr(), x.addr(), a as u64])
        .unwrap();

    let got = env.to_u32(&y);
    for i in 0..n {
        assert_eq!(got[i], ys[i].wrapping_add(a.wrapping_mul(xs[i])));
    }
    println!(
        "y += {a}*x over {n} elements: {} dynamic instructions",
        report.retired
    );
    println!(
        "({:.3} per element at VLEN={}, {} machine-code bytes)",
        report.retired as f64 / n as f64,
        cfg.vlen,
        plan.program().assemble().unwrap().len()
    );
}
