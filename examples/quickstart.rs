//! Quickstart: the scan vector model in five minutes.
//!
//! Builds an RVV environment (simulated, VLEN=1024), runs the three
//! primitive classes — elementwise, scan, permutation — plus a segmented
//! scan, and prints the dynamic instruction counts the paper uses as its
//! performance metric.
//!
//! Run: `cargo run --release --example quickstart`

use scan_vector_rvv::core::primitives::{
    baseline, enumerate, p_add, permute, plus_scan, seg_plus_scan,
};
use scan_vector_rvv::core::ScanEnv;
use scan_vector_rvv::isa::Sew;

fn main() {
    // The paper's headline machine: VLEN = 1024 bits, LMUL = 1.
    let mut env = ScanEnv::paper_default();

    // --- Elementwise class: p_add -------------------------------------
    let v = env.from_u32(&[10, 20, 30, 40, 50, 60, 70, 80]).unwrap();
    let cost = p_add(&mut env, &v, 5).unwrap();
    println!("p_add       -> {:?}  ({cost} instructions)", env.to_u32(&v));

    // --- Scan class: inclusive plus-scan ------------------------------
    let s = env.from_u32(&[3, 1, 7, 0, 4, 1, 6, 3]).unwrap();
    let cost = plus_scan(&mut env, &s).unwrap();
    println!("plus_scan   -> {:?}  ({cost} instructions)", env.to_u32(&s));

    // Same computation, sequential baseline — the paper's comparison.
    let sb = env.from_u32(&[3, 1, 7, 0, 4, 1, 6, 3]).unwrap();
    let base_cost = baseline::plus_scan(&mut env, &sb).unwrap();
    println!("  (baseline: {base_cost} instructions — counts diverge as N grows)");

    // --- Permutation class: out-of-place permute ----------------------
    let src = env.from_u32(&[100, 101, 102, 103]).unwrap();
    let idx = env.from_u32(&[3, 0, 2, 1]).unwrap();
    let dst = env.alloc(Sew::E32, 4).unwrap();
    let cost = permute(&mut env, &src, &idx, &dst).unwrap();
    println!(
        "permute     -> {:?}  ({cost} instructions)",
        env.to_u32(&dst)
    );

    // --- Derived operation: enumerate (exclusive count of set flags) --
    let flags = env.from_u32(&[1, 0, 1, 1, 0, 1]).unwrap();
    let out = env.alloc(Sew::E32, 6).unwrap();
    let (count, cost) = enumerate(&mut env, &flags, true, &out).unwrap();
    println!(
        "enumerate   -> {:?}, total {count}  ({cost} instructions)",
        env.to_u32(&out)
    );

    // --- Segmented scan: independent prefix sums per segment ----------
    let data = env.from_u32(&[5, 1, 2, 4, 8, 16, 3, 3]).unwrap();
    let heads = env.from_u32(&[1, 0, 1, 0, 0, 1, 0, 1]).unwrap();
    let cost = seg_plus_scan(&mut env, &data, &heads).unwrap();
    println!(
        "seg_scan    -> {:?}  ({cost} instructions)",
        env.to_u32(&data)
    );

    println!(
        "\nTotal dynamic instructions this session: {}",
        env.retired()
    );
}
