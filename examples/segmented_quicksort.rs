//! Segmented quicksort — the algorithm the paper's §5 names as the reason
//! segmented scans exist. Every segment is partitioned simultaneously each
//! round; no host-side recursion over subarrays.
//!
//! Run: `cargo run --release --example segmented_quicksort`

use rand::prelude::*;
use scan_vector_rvv::algos::{qsort_baseline, seg_quicksort};
use scan_vector_rvv::core::ScanEnv;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 4_096;
    let data: Vec<u32> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();

    let mut env = ScanEnv::paper_default();
    let v = env.from_u32(&data).unwrap();
    let cost = seg_quicksort(&mut env, &v).unwrap();
    let sorted = env.to_u32(&v);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    let w = env.from_u32(&data).unwrap();
    let scalar = qsort_baseline(&mut env, &w).unwrap();

    println!("n = {n} keys, flat segmented quicksort on the scan vector model");
    println!("  segmented quicksort: {cost:>12} instructions");
    println!("  scalar quicksort:    {scalar:>12} instructions");
    println!("  (the segmented version does O(n) vector work per round over");
    println!("   ~lg n rounds; its win grows with VLEN — try editing the config)");
}
