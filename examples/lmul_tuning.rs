//! The LMUL tuning story (paper §6.3, Tables 5 and 6) in one program.
//!
//! Sweeps the register-group multiplier for both scans and shows the two
//! regimes: the unsegmented scan (3 live vector values — never spills)
//! scales nearly ideally with LMUL, while the segmented scan (6 live
//! values) collapses at LMUL=8 on small inputs because only three aligned
//! register groups exist and the kernel spills.
//!
//! Run: `cargo run --release --example lmul_tuning`

use scan_vector_rvv::core::env::{EnvConfig, ScanEnv};
use scan_vector_rvv::core::primitives::{plus_scan, seg_plus_scan};
use scan_vector_rvv::isa::Lmul;

fn main() {
    let sizes = [1_000usize, 100_000];
    for &n in &sizes {
        let data: Vec<u32> = (0..n as u32).map(|i| i % 1000).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 64 == 0)).collect();
        println!("\nN = {n}");
        println!(
            "{:>6} {:>14} {:>14} {:>10} {:>10}",
            "LMUL", "plus_scan", "seg_scan", "scan spd", "seg spd"
        );
        let mut base = (0u64, 0u64);
        for lmul in Lmul::ALL {
            let mut env = ScanEnv::new(EnvConfig::with_lmul(lmul));
            let v = env.from_u32(&data).unwrap();
            let f = env.from_u32(&flags).unwrap();
            let scan_cost = plus_scan(&mut env, &v).unwrap();
            let w = env.from_u32(&data).unwrap();
            let seg_cost = seg_plus_scan(&mut env, &w, &f).unwrap();
            if lmul == Lmul::M1 {
                base = (scan_cost, seg_cost);
            }
            println!(
                "{:>6} {:>14} {:>14} {:>9.2}x {:>9.2}x",
                format!("m{}", lmul.regs()),
                scan_cost,
                seg_cost,
                base.0 as f64 / scan_cost as f64,
                base.1 as f64 / seg_cost as f64,
            );
        }
    }
    println!("\nTakeaway (the paper's §6.3 conclusion): pick LMUL by live-value count.");
    println!("Kernels with few live vector values benefit from the largest LMUL;");
    println!("register-hungry kernels hit spill overhead that only very large inputs");
    println!("amortize.");
}
