//! The LMUL tuning story (paper §6.3, Tables 5 and 6) in one program.
//!
//! Sweeps the register-group multiplier for both scans and shows the two
//! regimes: the unsegmented scan (3 live vector values — never spills)
//! scales nearly ideally with LMUL, while the segmented scan (6 live
//! values) collapses at LMUL=8 on small inputs because only three aligned
//! register groups exist and the kernel spills.
//!
//! The final section drills into the LMUL=8 collapse with the tracing
//! subsystem: per-phase instruction attribution and the spill detector
//! show exactly where the extra instructions go.
//!
//! Run: `cargo run --release --example lmul_tuning`

use scan_vector_rvv::core::primitives::{plus_scan, seg_plus_scan};
use scan_vector_rvv::core::{EnvConfig, ScanEnv};
use scan_vector_rvv::isa::Lmul;
use scan_vector_rvv::trace::TraceProfiler;

/// Run one traced seg_plus_scan and print where every instruction went:
/// per-phase counts and the spill traffic the detector attributed to them.
fn spill_breakdown(lmul: Lmul, n: usize) {
    let mut env = ScanEnv::new(EnvConfig::with_lmul(lmul));
    env.attach_tracer(Box::new(TraceProfiler::new(env.stack_region())));
    let data: Vec<u32> = (0..n as u32).map(|i| i % 1000).collect();
    let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 64 == 0)).collect();
    let v = env.from_u32(&data).unwrap();
    let f = env.from_u32(&flags).unwrap();
    seg_plus_scan(&mut env, &v, &f).unwrap();
    let prof = TraceProfiler::from_sink(env.detach_tracer().unwrap()).unwrap();

    let total = prof.total_retired();
    println!(
        "\nseg_plus_scan at m{} (N = {n}): {total} instructions",
        lmul.regs()
    );
    println!(
        "{:>14} {:>10} {:>7} {:>11} {:>12}",
        "phase", "retired", "%", "spill ops", "spill bytes"
    );
    for ph in prof.phases() {
        println!(
            "{:>14} {:>10} {:>6.1}% {:>11} {:>12}",
            ph.name,
            ph.retired,
            100.0 * ph.retired as f64 / total as f64,
            ph.spill.total_ops(),
            ph.spill.total_bytes(),
        );
    }
    let s = prof.spill();
    println!(
        "spill traffic: {} vector ops ({} bytes), {} scalar ops ({} bytes)",
        s.vector_ops(),
        s.vector_bytes,
        s.scalar_loads + s.scalar_stores,
        s.scalar_bytes
    );
}

fn main() {
    let sizes = [1_000usize, 100_000];
    for &n in &sizes {
        let data: Vec<u32> = (0..n as u32).map(|i| i % 1000).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 64 == 0)).collect();
        println!("\nN = {n}");
        println!(
            "{:>6} {:>14} {:>14} {:>10} {:>10}",
            "LMUL", "plus_scan", "seg_scan", "scan spd", "seg spd"
        );
        let mut base = (0u64, 0u64);
        for lmul in Lmul::ALL {
            let mut env = ScanEnv::new(EnvConfig::with_lmul(lmul));
            let v = env.from_u32(&data).unwrap();
            let f = env.from_u32(&flags).unwrap();
            let scan_cost = plus_scan(&mut env, &v).unwrap();
            let w = env.from_u32(&data).unwrap();
            let seg_cost = seg_plus_scan(&mut env, &w, &f).unwrap();
            if lmul == Lmul::M1 {
                base = (scan_cost, seg_cost);
            }
            println!(
                "{:>6} {:>14} {:>14} {:>9.2}x {:>9.2}x",
                format!("m{}", lmul.regs()),
                scan_cost,
                seg_cost,
                base.0 as f64 / scan_cost as f64,
                base.1 as f64 / seg_cost as f64,
            );
        }
    }
    println!("\nWhere do the extra LMUL=8 instructions go? Trace one small-N launch");
    println!("at each endpoint and let the spill detector attribute the traffic:");
    spill_breakdown(Lmul::M1, 4096);
    spill_breakdown(Lmul::M8, 4096);

    println!("\nTakeaway (the paper's §6.3 conclusion): pick LMUL by live-value count.");
    println!("Kernels with few live vector values benefit from the largest LMUL;");
    println!("register-hungry kernels hit spill overhead that only very large inputs");
    println!("amortize.");
}
